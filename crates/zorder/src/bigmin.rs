//! BIGMIN / LITMAX on the 3-D Morton curve (Tropf & Herzog 1981).
//!
//! Given a query box and a position on the z-curve, `bigmin` finds the
//! smallest code **greater than** the position that re-enters the box —
//! the skip target of a z-order index scan. [`crate::range::decompose_box`]
//! materialises all ranges up front; BIGMIN computes the next one lazily,
//! which a cursor-based scan over a huge box would prefer. Both are
//! exposed; property tests pin them to each other.

use crate::boxes::Box3;
use crate::morton::{decode3, encode3};

/// Bits of dimension 0 (x) in a 3-D Morton code.
const DIM0: u64 = 0x1249_2492_4924_9249;

/// Same-dimension bits strictly below bit `i`.
#[inline]
fn same_dim_below(i: u32) -> u64 {
    (DIM0 << (i % 3)) & ((1u64 << i) - 1)
}

/// Sets bit `i`, zeroes the same-dimension bits below it.
#[inline]
fn load_1000(v: u64, i: u32) -> u64 {
    (v | (1u64 << i)) & !same_dim_below(i)
}

/// Clears bit `i`, sets the same-dimension bits below it.
#[inline]
fn load_0111(v: u64, i: u32) -> u64 {
    (v & !(1u64 << i)) | same_dim_below(i)
}

/// Whether `code` decodes into the box.
#[inline]
fn in_box(code: u64, b: &Box3) -> bool {
    let (x, y, z) = decode3(code);
    b.contains_point(x, y, z)
}

/// Smallest Morton code `> code` whose point lies inside `b`, or `None`.
///
/// `code` itself may be inside or outside the box.
pub fn bigmin(code: u64, b: &Box3) -> Option<u64> {
    let mut zmin = encode3(b.lo[0], b.lo[1], b.lo[2]);
    let mut zmax = encode3(b.hi[0], b.hi[1], b.hi[2]);
    if code >= zmax {
        return None;
    }
    if code < zmin {
        return Some(zmin);
    }
    let mut best: Option<u64> = None;
    for i in (0..63).rev() {
        let zb = (code >> i) & 1;
        let minb = (zmin >> i) & 1;
        let maxb = (zmax >> i) & 1;
        match (zb, minb, maxb) {
            (0, 0, 0) => {}
            (0, 0, 1) => {
                best = Some(load_1000(zmin, i));
                zmax = load_0111(zmax, i);
            }
            (0, 1, 1) => return Some(zmin),
            (1, 0, 0) => return best,
            (1, 0, 1) => {
                zmin = load_1000(zmin, i);
            }
            (1, 1, 1) => {}
            // min bit set while max bit clear cannot happen for a valid box
            _ => unreachable!("inconsistent box bits"),
        }
    }
    // code == zmax was excluded above; reaching here means code itself
    // matched min==max all the way down, so nothing greater remains
    best
}

/// Largest Morton code `< code` whose point lies inside `b`, or `None`
/// (the LITMAX dual, used by descending scans).
pub fn litmax(code: u64, b: &Box3) -> Option<u64> {
    let mut zmin = encode3(b.lo[0], b.lo[1], b.lo[2]);
    let mut zmax = encode3(b.hi[0], b.hi[1], b.hi[2]);
    if code <= zmin {
        return None;
    }
    if code > zmax {
        return Some(zmax);
    }
    let mut best: Option<u64> = None;
    for i in (0..63).rev() {
        let zb = (code >> i) & 1;
        let minb = (zmin >> i) & 1;
        let maxb = (zmax >> i) & 1;
        match (zb, minb, maxb) {
            (1, 1, 1) => {}
            (1, 0, 1) => {
                best = Some(load_0111(zmax, i));
                zmin = load_1000(zmin, i);
            }
            (1, 0, 0) => return Some(zmax),
            (0, 1, 1) => return best,
            (0, 0, 1) => {
                zmax = load_0111(zmax, i);
            }
            (0, 0, 0) => {}
            _ => unreachable!("inconsistent box bits"),
        }
    }
    best
}

/// Iterator over every in-box code at or after `start`, advancing with
/// BIGMIN skips — a lazy alternative to materialising
/// [`crate::range::decompose_box`].
pub struct ZScanCursor {
    b: Box3,
    next: Option<u64>,
}

impl ZScanCursor {
    /// Cursor positioned at the first in-box code `>= start`.
    pub fn new(b: Box3, start: u64) -> Self {
        let next = if in_box(start, &b) {
            Some(start)
        } else {
            bigmin(start, &b)
        };
        Self { b, next }
    }
}

impl Iterator for ZScanCursor {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let cur = self.next?;
        // consecutive in-box codes advance by one; gaps skip via BIGMIN
        self.next = match cur.checked_add(1) {
            Some(succ) if in_box(succ, &self.b) => Some(succ),
            Some(_) => bigmin(cur, &self.b),
            None => None,
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::MAX_COORD3;
    use crate::range::{decompose_box, ZRange};
    use proptest::prelude::*;

    fn brute_bigmin(code: u64, b: &Box3, limit: u64) -> Option<u64> {
        (code + 1..=limit).find(|&c| in_box(c, b))
    }

    fn brute_litmax(code: u64, b: &Box3) -> Option<u64> {
        (0..code).rev().find(|&c| in_box(c, b))
    }

    #[test]
    fn bigmin_known_case() {
        // classic example shape: box spanning two octants with a gap
        let b = Box3::new([1, 1, 0], [3, 3, 0]);
        // code of (3,1,0) is inside; next code after it on the curve that
        // is inside must match brute force
        let start = encode3(3, 1, 0);
        let expect = brute_bigmin(start, &b, encode3(3, 3, 0));
        assert_eq!(bigmin(start, &b), expect);
    }

    #[test]
    fn bigmin_degenerate_boxes() {
        let b = Box3::new([5, 5, 5], [5, 5, 5]);
        let only = encode3(5, 5, 5);
        assert_eq!(bigmin(0, &b), Some(only));
        assert_eq!(bigmin(only, &b), None);
        assert_eq!(litmax(u64::MAX, &b), Some(only));
        assert_eq!(litmax(only, &b), None);
    }

    #[test]
    fn cursor_enumerates_exactly_the_box() {
        let b = Box3::new([2, 1, 3], [6, 4, 5]);
        let got: Vec<u64> = ZScanCursor::new(b, 0).collect();
        let mut expect: Vec<u64> = b.points().map(|(x, y, z)| encode3(x, y, z)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn cursor_agrees_with_range_decomposition() {
        let b = Box3::new([0, 3, 1], [7, 6, 6]);
        let via_cursor: Vec<u64> = ZScanCursor::new(b, 0).collect();
        let via_ranges: Vec<u64> = crate::range::decompose_box(&b, 3)
            .iter()
            .flat_map(|r| r.start..=r.end)
            .collect();
        assert_eq!(via_cursor, via_ranges);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn bigmin_matches_brute_force(
            lo in prop::array::uniform3(0u32..12),
            ext in prop::array::uniform3(1u32..5),
            px in 0u32..16, py in 0u32..16, pz in 0u32..16,
        ) {
            let b = Box3::new(lo, [
                (lo[0] + ext[0] - 1).min(15),
                (lo[1] + ext[1] - 1).min(15),
                (lo[2] + ext[2] - 1).min(15),
            ]);
            let code = encode3(px, py, pz);
            let got = bigmin(code, &b);
            let expect = brute_bigmin(code, &b, encode3(15, 15, 15));
            prop_assert_eq!(got, expect, "box {:?} code {}", b, code);
        }

        #[test]
        fn litmax_matches_brute_force(
            lo in prop::array::uniform3(0u32..12),
            ext in prop::array::uniform3(1u32..5),
            px in 0u32..16, py in 0u32..16, pz in 0u32..16,
        ) {
            let b = Box3::new(lo, [
                (lo[0] + ext[0] - 1).min(15),
                (lo[1] + ext[1] - 1).min(15),
                (lo[2] + ext[2] - 1).min(15),
            ]);
            let code = encode3(px, py, pz);
            prop_assert_eq!(litmax(code, &b), brute_litmax(code, &b));
        }

        #[test]
        fn bigmin_result_is_in_box_and_minimal_skip(
            lo in prop::array::uniform3(0u32..30),
            ext in prop::array::uniform3(1u32..12),
            seed in 0u64..1_000_000,
        ) {
            let b = Box3::new(lo, [lo[0]+ext[0]-1, lo[1]+ext[1]-1, lo[2]+ext[2]-1]);
            let code = seed % (encode3(63, 63, 63) + 1);
            if let Some(next) = bigmin(code, &b) {
                prop_assert!(next > code);
                prop_assert!(in_box(next, &b));
            }
        }
    }

    // ---- pinning BIGMIN / LITMAX against decompose_box ---------------------
    //
    // decompose_box produces the exact, minimal, sorted set of in-box code
    // ranges, so "the next in-box code after `code`" is answerable from the
    // ranges alone — an independent oracle that, unlike brute force, stays
    // cheap at the full 21-bit coordinate limit (codes up to bit 62).

    /// Smallest in-range code strictly greater than `code`.
    fn next_in_ranges(code: u64, ranges: &[ZRange]) -> Option<u64> {
        ranges.iter().find(|r| r.end > code).map(
            |r| {
                if r.start > code {
                    r.start
                } else {
                    code + 1
                }
            },
        )
    }

    /// Largest in-range code strictly less than `code`.
    fn prev_in_ranges(code: u64, ranges: &[ZRange]) -> Option<u64> {
        ranges.iter().rev().find(|r| r.start < code).map(|r| {
            if r.end < code {
                r.end
            } else {
                code - 1
            }
        })
    }

    /// Coordinates hugging either end of the 21-bit-per-axis range, so
    /// codes exercise the bit-62 edge of the scan loops.
    fn edge_coord() -> impl Strategy<Value = u32> {
        prop_oneof![0u32..512, (MAX_COORD3 - 511)..=MAX_COORD3]
    }

    /// Extents biased towards the 1-wide degenerate case.
    fn extent() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), 1u32..24]
    }

    fn edge_box(lo: [u32; 3], ext: [u32; 3]) -> Box3 {
        Box3::new(
            lo,
            [
                (lo[0] + ext[0] - 1).min(MAX_COORD3),
                (lo[1] + ext[1] - 1).min(MAX_COORD3),
                (lo[2] + ext[2] - 1).min(MAX_COORD3),
            ],
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        #[test]
        fn bigmin_and_litmax_agree_with_decompose_box_at_the_coordinate_limit(
            lo in prop::array::uniform3(edge_coord()),
            ext in prop::array::uniform3(extent()),
            probe in prop::array::uniform3(edge_coord()),
            delta in -2i64..=2,
        ) {
            let b = edge_box(lo, ext);
            let ranges = decompose_box(&b, 21);
            let code = encode3(probe[0], probe[1], probe[2]).saturating_add_signed(delta);
            prop_assert_eq!(
                bigmin(code, &b), next_in_ranges(code, &ranges),
                "bigmin: box {:?} code {}", b, code
            );
            prop_assert_eq!(
                litmax(code, &b), prev_in_ranges(code, &ranges),
                "litmax: box {:?} code {}", b, code
            );
        }

        #[test]
        fn bigmin_and_litmax_at_and_beyond_the_box_extremes(
            lo in prop::array::uniform3(edge_coord()),
            ext in prop::array::uniform3(extent()),
        ) {
            let b = edge_box(lo, ext);
            let ranges = decompose_box(&b, 21);
            let zmin = encode3(b.lo[0], b.lo[1], b.lo[2]);
            let zmax = encode3(b.hi[0], b.hi[1], b.hi[2]);
            // nothing greater than zmax re-enters the box
            prop_assert_eq!(bigmin(zmax, &b), None);
            prop_assert_eq!(bigmin(zmax.saturating_add(1), &b), None);
            // descending from above the box lands exactly on zmax
            prop_assert_eq!(litmax(zmax + 1, &b), Some(zmax));
            prop_assert_eq!(litmax(zmin, &b), None);
            // stepping inward from the extreme codes matches the ranges
            prop_assert_eq!(bigmin(zmin, &b), next_in_ranges(zmin, &ranges));
            prop_assert_eq!(litmax(zmax, &b), prev_in_ranges(zmax, &ranges));
        }
    }

    #[test]
    fn bigmin_handles_the_top_of_the_curve() {
        // octree-aligned 2³ cube at the very top corner: its 8 codes are
        // the last 8 on the curve, ending at 2^63 - 1 (bit 62 set)
        let m = MAX_COORD3;
        let b = Box3::new([m - 1, m - 1, m - 1], [m, m, m]);
        let zmin = encode3(m - 1, m - 1, m - 1);
        let zmax = encode3(m, m, m);
        assert_eq!(zmax, (1u64 << 63) - 1);
        assert_eq!(zmax, zmin + 7);
        assert_eq!(bigmin(0, &b), Some(zmin));
        assert_eq!(bigmin(zmin, &b), Some(zmin + 1));
        assert_eq!(bigmin(zmax - 1, &b), Some(zmax));
        assert_eq!(bigmin(zmax, &b), None);
        assert_eq!(litmax(zmax, &b), Some(zmax - 1));
        assert_eq!(litmax(u64::MAX, &b), Some(zmax));
    }
}
