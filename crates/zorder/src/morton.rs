//! Bit-interleaving Morton-code primitives.
//!
//! 3-D codes interleave 21 bits per dimension into a 63-bit code with bit
//! layout `… z2 y2 x2 z1 y1 x1 z0 y0 x0` (x occupies the least significant
//! position of each triple). 4-D codes interleave 15 bits per dimension and
//! are used by the friends-of-friends spatial hash.

/// Largest coordinate representable in a 3-D Morton code (21 bits).
pub const MAX_COORD3: u32 = (1 << 21) - 1;

/// Largest coordinate representable in a 4-D Morton code (15 bits).
pub const MAX_COORD4: u32 = (1 << 15) - 1;

/// Spreads the low 21 bits of `x` so that consecutive input bits land three
/// positions apart (`b0 -> bit 0`, `b1 -> bit 3`, ...).
#[inline]
pub fn spread3(x: u32) -> u64 {
    debug_assert!(x <= MAX_COORD3, "coordinate {x} exceeds 21 bits");
    let mut v = u64::from(x) & 0x1f_ffff;
    v = (v | (v << 32)) & 0x001f_0000_0000_ffff;
    v = (v | (v << 16)) & 0x001f_0000_ff00_00ff;
    v = (v | (v << 8)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v << 4)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`spread3`]: collects every third bit back into a dense value.
#[inline]
pub fn compact3(v: u64) -> u32 {
    let mut v = v & 0x1249_2492_4924_9249;
    v = (v | (v >> 2)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v >> 4)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v >> 8)) & 0x001f_0000_ff00_00ff;
    v = (v | (v >> 16)) & 0x001f_0000_0000_ffff;
    v = (v | (v >> 32)) & 0x1f_ffff;
    v as u32
}

/// Encodes `(x, y, z)` into a 3-D Morton code.
///
/// Matches the JHTDB convention: the code of an atom is the interleaved
/// coordinates of its lower-left corner, with `x` in the least significant
/// interleave slot so that z-order sorts by `z`, then `y`, then `x` at the
/// coarsest level.
#[inline]
pub fn encode3(x: u32, y: u32, z: u32) -> u64 {
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Decodes a 3-D Morton code back into `(x, y, z)`.
#[inline]
pub fn decode3(code: u64) -> (u32, u32, u32) {
    (compact3(code), compact3(code >> 1), compact3(code >> 2))
}

/// Per-row Morton encoder: hoists the `y`/`z` bit spreads out of an x-loop.
///
/// Scan kernels emit hits row by row (fixed `y`, `z`, varying `x`). Encoding
/// each hit with [`encode3`] re-spreads all three coordinates per point;
/// `MortonRow` spreads `y` and `z` once per row so only `x` is spread per
/// point. `MortonRow::encode_x(x)` is bit-identical to `encode3(x, y, z)`.
#[derive(Debug, Clone, Copy)]
pub struct MortonRow {
    yz: u64,
}

impl MortonRow {
    /// Fixes the row coordinates `(y, z)`.
    #[inline]
    pub fn new(y: u32, z: u32) -> Self {
        Self {
            yz: (spread3(y) << 1) | (spread3(z) << 2),
        }
    }

    /// Encodes `(x, y, z)` for the row's `y`, `z`.
    #[inline]
    pub fn encode_x(&self, x: u32) -> u64 {
        spread3(x) | self.yz
    }
}

/// Local (within-atom) coordinates for each 9-bit Morton code.
///
/// For an 8³ atom the low 9 bits of a point code interleave the three 3-bit
/// local offsets, so the whole decode collapses to one table lookup.
const LOCAL3: [(u8, u8, u8); 512] = local3_table();

const fn local3_table() -> [(u8, u8, u8); 512] {
    let mut t = [(0u8, 0u8, 0u8); 512];
    let mut code = 0usize;
    while code < 512 {
        let c = code as u32;
        let x = (c & 1) | ((c >> 2) & 2) | ((c >> 4) & 4);
        let y = ((c >> 1) & 1) | ((c >> 3) & 2) | ((c >> 5) & 4);
        let z = ((c >> 2) & 1) | ((c >> 4) & 2) | ((c >> 6) & 4);
        t[code] = (x as u8, y as u8, z as u8);
        code += 1;
    }
    t
}

/// Batched Morton decoder that amortises the bit-compaction over an atom.
///
/// A 3-D point code splits as `atom_code << 9 | local_code` where
/// `atom_code` is the Morton code of the containing 8³ atom and
/// `local_code` interleaves the three 3-bit in-atom offsets. Streams of
/// codes sorted by z-index visit each atom's 512 points consecutively, so
/// the decoder runs the full [`decode3`] bit-compaction only when the atom
/// changes and serves every other point from a 512-entry local table.
///
/// `decode(code)` is exactly [`decode3`]`(code)` for every code.
#[derive(Debug, Clone)]
pub struct MortonBlockDecoder {
    last_atom: u64,
    base: (u32, u32, u32),
}

impl Default for MortonBlockDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MortonBlockDecoder {
    /// Creates a decoder with an empty atom cache.
    #[inline]
    pub fn new() -> Self {
        Self {
            // Codes are at most 63 bits, so `code >> 9` never reaches
            // u64::MAX and the cache starts guaranteed-cold.
            last_atom: u64::MAX,
            base: (0, 0, 0),
        }
    }

    /// Decodes a point code, reusing the cached atom base when possible.
    #[inline]
    pub fn decode(&mut self, code: u64) -> (u32, u32, u32) {
        let atom = code >> 9;
        if atom != self.last_atom {
            let (ax, ay, az) = decode3(atom);
            self.base = (ax << 3, ay << 3, az << 3);
            self.last_atom = atom;
        }
        let (dx, dy, dz) = LOCAL3[(code & 0x1ff) as usize];
        (
            self.base.0 | u32::from(dx),
            self.base.1 | u32::from(dy),
            self.base.2 | u32::from(dz),
        )
    }
}

#[inline]
fn spread4(x: u32) -> u64 {
    debug_assert!(x <= MAX_COORD4, "coordinate {x} exceeds 15 bits");
    let mut v = u64::from(x) & 0x7fff;
    v = (v | (v << 24)) & 0x0000_00ff_0000_00ff;
    v = (v | (v << 12)) & 0x000f_000f_000f_000f;
    v = (v | (v << 6)) & 0x0303_0303_0303_0303;
    v = (v | (v << 3)) & 0x1111_1111_1111_1111;
    v
}

#[inline]
fn compact4(v: u64) -> u32 {
    let mut v = v & 0x1111_1111_1111_1111;
    v = (v | (v >> 3)) & 0x0303_0303_0303_0303;
    v = (v | (v >> 6)) & 0x000f_000f_000f_000f;
    v = (v | (v >> 12)) & 0x0000_00ff_0000_00ff;
    v = (v | (v >> 24)) & 0x7fff;
    v as u32
}

/// Encodes `(x, y, z, t)` into a 4-D Morton code (15 bits per dimension).
#[inline]
pub fn encode4(x: u32, y: u32, z: u32, t: u32) -> u64 {
    spread4(x) | (spread4(y) << 1) | (spread4(z) << 2) | (spread4(t) << 3)
}

/// Decodes a 4-D Morton code back into `(x, y, z, t)`.
#[inline]
pub fn decode4(code: u64) -> (u32, u32, u32, u32) {
    (
        compact4(code),
        compact4(code >> 1),
        compact4(code >> 2),
        compact4(code >> 3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode3_known_values() {
        assert_eq!(encode3(0, 0, 0), 0);
        assert_eq!(encode3(1, 0, 0), 0b001);
        assert_eq!(encode3(0, 1, 0), 0b010);
        assert_eq!(encode3(0, 0, 1), 0b100);
        assert_eq!(encode3(1, 1, 1), 0b111);
        assert_eq!(encode3(2, 0, 0), 0b001_000);
        // triples (z y x) from coarse to fine: (0,1,0) (0,0,1) (1,1,1)
        assert_eq!(encode3(3, 5, 1), 0b010_001_111);
    }

    #[test]
    fn encode3_max_coordinate_roundtrips() {
        let c = encode3(MAX_COORD3, MAX_COORD3, MAX_COORD3);
        assert_eq!(decode3(c), (MAX_COORD3, MAX_COORD3, MAX_COORD3));
    }

    #[test]
    fn encode4_known_values() {
        assert_eq!(encode4(0, 0, 0, 0), 0);
        assert_eq!(encode4(1, 1, 1, 1), 0b1111);
        assert_eq!(encode4(1, 0, 0, 1), 0b1001);
    }

    #[test]
    fn z_order_sorts_nested_octants() {
        // All codes in octant (0..4)^3 are smaller than any code in the
        // octant shifted by +4 in z.
        let mut max_low = 0;
        let mut min_high = u64::MAX;
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    max_low = max_low.max(encode3(x, y, z));
                    min_high = min_high.min(encode3(x, y, z + 4));
                }
            }
        }
        assert!(max_low < min_high);
    }

    #[test]
    fn block_decoder_reuses_atom_base_across_runs() {
        // Two atoms, interleaved visits: the cache must refresh on switch.
        let mut d = MortonBlockDecoder::new();
        let a = encode3(8, 0, 0);
        let b = encode3(0, 8, 16);
        assert_eq!(d.decode(a), (8, 0, 0));
        assert_eq!(d.decode(a | 0b111), decode3(a | 0b111));
        assert_eq!(d.decode(b), (0, 8, 16));
        assert_eq!(d.decode(a), (8, 0, 0));
    }

    proptest! {
        #[test]
        fn roundtrip3(x in 0..=MAX_COORD3, y in 0..=MAX_COORD3, z in 0..=MAX_COORD3) {
            prop_assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
        }

        #[test]
        fn morton_row_matches_encode3(
            y in 0..=MAX_COORD3, z in 0..=MAX_COORD3,
            xs in prop::collection::vec(0..=MAX_COORD3, 1..32),
        ) {
            let row = MortonRow::new(y, z);
            for x in xs {
                prop_assert_eq!(row.encode_x(x), encode3(x, y, z));
            }
        }

        #[test]
        fn block_decoder_matches_decode3(
            codes in prop::collection::vec(0u64..1 << 63, 1..256),
        ) {
            let mut sorted = codes.clone();
            sorted.sort_unstable();
            let mut d = MortonBlockDecoder::new();
            // Sorted order exercises the cache-hit path; raw order the misses.
            for c in sorted.iter().chain(&codes) {
                prop_assert_eq!(d.decode(*c), decode3(*c));
            }
        }

        #[test]
        fn roundtrip4(x in 0..=MAX_COORD4, y in 0..=MAX_COORD4,
                      z in 0..=MAX_COORD4, t in 0..=MAX_COORD4) {
            prop_assert_eq!(decode4(encode4(x, y, z, t)), (x, y, z, t));
        }

        #[test]
        fn spread_compact_inverse(x in 0..=MAX_COORD3) {
            prop_assert_eq!(compact3(spread3(x)), x);
        }

        #[test]
        fn code_is_monotone_in_octant_level(
            x in 0u32..1024, y in 0u32..1024, z in 0u32..1024, shift in 1u32..10
        ) {
            // Doubling the coarse octant index along any axis strictly
            // increases the code: z-order respects the octree hierarchy.
            let c = encode3(x, y, z);
            let bump = 1u32 << (10 + shift - 1);
            prop_assert!(encode3(x + bump, y, z) > c);
            prop_assert!(encode3(x, y + bump, z) > c);
            prop_assert!(encode3(x, y, z + bump) > c);
        }
    }
}
