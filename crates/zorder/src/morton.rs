//! Bit-interleaving Morton-code primitives.
//!
//! 3-D codes interleave 21 bits per dimension into a 63-bit code with bit
//! layout `… z2 y2 x2 z1 y1 x1 z0 y0 x0` (x occupies the least significant
//! position of each triple). 4-D codes interleave 15 bits per dimension and
//! are used by the friends-of-friends spatial hash.

/// Largest coordinate representable in a 3-D Morton code (21 bits).
pub const MAX_COORD3: u32 = (1 << 21) - 1;

/// Largest coordinate representable in a 4-D Morton code (15 bits).
pub const MAX_COORD4: u32 = (1 << 15) - 1;

/// Spreads the low 21 bits of `x` so that consecutive input bits land three
/// positions apart (`b0 -> bit 0`, `b1 -> bit 3`, ...).
#[inline]
pub fn spread3(x: u32) -> u64 {
    debug_assert!(x <= MAX_COORD3, "coordinate {x} exceeds 21 bits");
    let mut v = u64::from(x) & 0x1f_ffff;
    v = (v | (v << 32)) & 0x001f_0000_0000_ffff;
    v = (v | (v << 16)) & 0x001f_0000_ff00_00ff;
    v = (v | (v << 8)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v << 4)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`spread3`]: collects every third bit back into a dense value.
#[inline]
pub fn compact3(v: u64) -> u32 {
    let mut v = v & 0x1249_2492_4924_9249;
    v = (v | (v >> 2)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v >> 4)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v >> 8)) & 0x001f_0000_ff00_00ff;
    v = (v | (v >> 16)) & 0x001f_0000_0000_ffff;
    v = (v | (v >> 32)) & 0x1f_ffff;
    v as u32
}

/// Encodes `(x, y, z)` into a 3-D Morton code.
///
/// Matches the JHTDB convention: the code of an atom is the interleaved
/// coordinates of its lower-left corner, with `x` in the least significant
/// interleave slot so that z-order sorts by `z`, then `y`, then `x` at the
/// coarsest level.
#[inline]
pub fn encode3(x: u32, y: u32, z: u32) -> u64 {
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Decodes a 3-D Morton code back into `(x, y, z)`.
#[inline]
pub fn decode3(code: u64) -> (u32, u32, u32) {
    (compact3(code), compact3(code >> 1), compact3(code >> 2))
}

#[inline]
fn spread4(x: u32) -> u64 {
    debug_assert!(x <= MAX_COORD4, "coordinate {x} exceeds 15 bits");
    let mut v = u64::from(x) & 0x7fff;
    v = (v | (v << 24)) & 0x0000_00ff_0000_00ff;
    v = (v | (v << 12)) & 0x000f_000f_000f_000f;
    v = (v | (v << 6)) & 0x0303_0303_0303_0303;
    v = (v | (v << 3)) & 0x1111_1111_1111_1111;
    v
}

#[inline]
fn compact4(v: u64) -> u32 {
    let mut v = v & 0x1111_1111_1111_1111;
    v = (v | (v >> 3)) & 0x0303_0303_0303_0303;
    v = (v | (v >> 6)) & 0x000f_000f_000f_000f;
    v = (v | (v >> 12)) & 0x0000_00ff_0000_00ff;
    v = (v | (v >> 24)) & 0x7fff;
    v as u32
}

/// Encodes `(x, y, z, t)` into a 4-D Morton code (15 bits per dimension).
#[inline]
pub fn encode4(x: u32, y: u32, z: u32, t: u32) -> u64 {
    spread4(x) | (spread4(y) << 1) | (spread4(z) << 2) | (spread4(t) << 3)
}

/// Decodes a 4-D Morton code back into `(x, y, z, t)`.
#[inline]
pub fn decode4(code: u64) -> (u32, u32, u32, u32) {
    (
        compact4(code),
        compact4(code >> 1),
        compact4(code >> 2),
        compact4(code >> 3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode3_known_values() {
        assert_eq!(encode3(0, 0, 0), 0);
        assert_eq!(encode3(1, 0, 0), 0b001);
        assert_eq!(encode3(0, 1, 0), 0b010);
        assert_eq!(encode3(0, 0, 1), 0b100);
        assert_eq!(encode3(1, 1, 1), 0b111);
        assert_eq!(encode3(2, 0, 0), 0b001_000);
        // triples (z y x) from coarse to fine: (0,1,0) (0,0,1) (1,1,1)
        assert_eq!(encode3(3, 5, 1), 0b010_001_111);
    }

    #[test]
    fn encode3_max_coordinate_roundtrips() {
        let c = encode3(MAX_COORD3, MAX_COORD3, MAX_COORD3);
        assert_eq!(decode3(c), (MAX_COORD3, MAX_COORD3, MAX_COORD3));
    }

    #[test]
    fn encode4_known_values() {
        assert_eq!(encode4(0, 0, 0, 0), 0);
        assert_eq!(encode4(1, 1, 1, 1), 0b1111);
        assert_eq!(encode4(1, 0, 0, 1), 0b1001);
    }

    #[test]
    fn z_order_sorts_nested_octants() {
        // All codes in octant (0..4)^3 are smaller than any code in the
        // octant shifted by +4 in z.
        let mut max_low = 0;
        let mut min_high = u64::MAX;
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    max_low = max_low.max(encode3(x, y, z));
                    min_high = min_high.min(encode3(x, y, z + 4));
                }
            }
        }
        assert!(max_low < min_high);
    }

    proptest! {
        #[test]
        fn roundtrip3(x in 0..=MAX_COORD3, y in 0..=MAX_COORD3, z in 0..=MAX_COORD3) {
            prop_assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
        }

        #[test]
        fn roundtrip4(x in 0..=MAX_COORD4, y in 0..=MAX_COORD4,
                      z in 0..=MAX_COORD4, t in 0..=MAX_COORD4) {
            prop_assert_eq!(decode4(encode4(x, y, z, t)), (x, y, z, t));
        }

        #[test]
        fn spread_compact_inverse(x in 0..=MAX_COORD3) {
            prop_assert_eq!(compact3(spread3(x)), x);
        }

        #[test]
        fn code_is_monotone_in_octant_level(
            x in 0u32..1024, y in 0u32..1024, z in 0u32..1024, shift in 1u32..10
        ) {
            // Doubling the coarse octant index along any axis strictly
            // increases the code: z-order respects the octree hierarchy.
            let c = encode3(x, y, z);
            let bump = 1u32 << (10 + shift - 1);
            prop_assert!(encode3(x + bump, y, z) > c);
            prop_assert!(encode3(x, y + bump, z) > c);
            prop_assert!(encode3(x, y, z + bump) > c);
        }
    }
}
