//! Cache observability counters.

/// Cumulative counters of one node's semantic cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries inserted (including replacements).
    pub inserts: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Commit retries caused by snapshot-isolation write conflicts.
    pub conflicts: u64,
    /// Entries dropped because their stored rows failed checksum
    /// validation on lookup (the caller recomputes and re-inserts).
    pub quarantined: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `None` before any lookup.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_empty() {
        assert_eq!(CacheStats::default().hit_ratio(), None);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_ratio(), Some(0.75));
    }
}
