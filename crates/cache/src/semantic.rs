//! Algorithm 1: `GetThreshold` against the cache tables.
//!
//! The cache is *self-healing*: every entry stores a checksum over its
//! data rows, validated whenever the entry is about to answer a query. A
//! mismatch (SSD bit-rot, injected corruption) quarantines the entry —
//! it is dropped, the lookup reports [`CacheLookup::Quarantined`], and
//! the caller recomputes from raw data and re-inserts, rebuilding the
//! entry byte-identically to a fault-free evaluation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tdb_storage::device::{DeviceId, IoSession};
use tdb_storage::faults::FaultPlan;
use tdb_storage::mvcc::{CommitError, MvccStore};
use tdb_zorder::{decode3, encode3, Box3, MortonBlockDecoder};

use crate::stats::CacheStats;

/// Primary key of a `cacheInfo` row: which derived quantity of which
/// time-step the entry describes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheInfoKey {
    pub dataset: String,
    /// Raw field + derived-field pair, e.g. `velocity/curl_norm`.
    pub field: String,
    pub timestep: u32,
}

/// A `cacheInfo` row (paper §4: "dataset, field, time-step, start and end
/// coordinates of the spatial region examined and the threshold value").
#[derive(Debug, Clone, PartialEq)]
pub struct CacheInfoRow {
    pub ordinal: u64,
    pub region: Box3,
    pub threshold: f64,
    pub npoints: u64,
    pub last_used: u64,
    /// Checksum over the entry's `cacheData` rows in zindex order,
    /// validated before the entry answers a query.
    pub checksum: u64,
}

/// One cached above-threshold grid point: Morton code of the location and
/// the field norm there (`cacheData`'s `zindex` / `dataValue` columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    pub zindex: u64,
    pub value: f32,
}

impl ThresholdPoint {
    /// Grid coordinates of the point.
    pub fn coords(&self) -> (u32, u32, u32) {
        decode3(self.zindex)
    }

    /// Builds a point from grid coordinates.
    pub fn at(x: u32, y: u32, z: u32, value: f32) -> Self {
        Self {
            zindex: encode3(x, y, z),
            value,
        }
    }
}

/// Bytes one `cacheData` row occupies on the SSD (8-byte zindex + 4-byte
/// value, matching the paper's ~40 MB for 10⁶ points including overhead).
pub const DATA_ROW_BYTES: u64 = 12;
/// Approximate on-SSD footprint of a `cacheInfo` row.
pub const INFO_ROW_BYTES: u64 = 64;

/// Cache sizing and device binding.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// SSD capacity available for cache tables on this node.
    pub budget_bytes: u64,
    /// Device charged for cache-table I/O.
    pub ssd: DeviceId,
    /// Fault-injection plan consulted on inserts (silent SSD corruption).
    pub faults: Option<Arc<FaultPlan>>,
}

/// Result of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Answered from `cacheData`; points filtered to the query.
    Hit(Vec<ThresholdPoint>),
    /// No usable entry: evaluate from raw data and [`SemanticCache::insert`].
    Miss,
    /// A covering entry existed but failed checksum validation and was
    /// dropped. The caller must recompute from raw data and re-insert,
    /// which rebuilds (heals) the entry.
    Quarantined,
}

/// One node's application-aware semantic cache.
pub struct SemanticCache {
    info: MvccStore<CacheInfoKey, CacheInfoRow>,
    data: MvccStore<(u64, u64), f32>,
    config: CacheConfig,
    next_ordinal: AtomicU64,
    lru_clock: AtomicU64,
    stats: Mutex<CacheStats>,
}

impl SemanticCache {
    /// Empty cache bound to an SSD device.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            info: MvccStore::new(),
            data: MvccStore::new(),
            config,
            next_ordinal: AtomicU64::new(1),
            lru_clock: AtomicU64::new(1),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    fn tick(&self) -> u64 {
        self.lru_clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Algorithm 1, lines 4–28: looks up `(key)` and answers from the cache
    /// when the stored entry covers `query_box` at a threshold no higher
    /// than `threshold`.
    pub fn lookup(
        &self,
        key: &CacheInfoKey,
        query_box: &Box3,
        threshold: f64,
        session: &mut IoSession,
    ) -> CacheLookup {
        let txn = self.info.begin();
        // cacheInfo lookup: one clustered-index probe on the SSD
        session.charge(self.config.ssd, 1, INFO_ROW_BYTES);
        let Some(row) = txn.get(key) else {
            self.stats.lock().misses += 1;
            tdb_obs::add("cache.semantic.misses", 1);
            return CacheLookup::Miss;
        };
        if threshold < row.threshold || !row.region.contains_box(query_box) {
            self.stats.lock().misses += 1;
            tdb_obs::add("cache.semantic.misses", 1);
            return CacheLookup::Miss;
        }
        // cacheData scan: clustered index lookup by ordinal, then a run of
        // `npoints` rows read off the SSD
        let data_txn = self.data.begin();
        let rows = data_txn.range((row.ordinal, 0)..=(row.ordinal, u64::MAX));
        session.charge(
            self.config.ssd,
            1 + rows.len() as u64 * DATA_ROW_BYTES / (64 * 1024),
            rows.len() as u64 * DATA_ROW_BYTES,
        );
        // validate the full entry before answering from it: a checksum or
        // row-count mismatch means the stored rows rotted — quarantine the
        // entry and make the caller recompute it from raw data
        let stored = rows_checksum(rows.iter().map(|((_, z), v)| (*z, *v)));
        if rows.len() as u64 != row.npoints || stored != row.checksum {
            drop(data_txn);
            drop(txn);
            self.invalidate(key);
            self.stats.lock().quarantined += 1;
            tdb_obs::add("cache.semantic.quarantined", 1);
            return CacheLookup::Quarantined;
        }
        // Rows arrive in zindex order, so consecutive points usually share
        // an 8³ atom: the block decoder re-derives the atom base only when
        // the run crosses an atom boundary, instead of de-interleaving all
        // 63 bits per point.
        let mut decoder = MortonBlockDecoder::default();
        let points: Vec<ThresholdPoint> = rows
            .into_iter()
            .filter_map(|((_, zindex), value)| {
                let (x, y, z) = decoder.decode(zindex);
                (f64::from(value) >= threshold && query_box.contains_point(x, y, z))
                    .then_some(ThresholdPoint { zindex, value })
            })
            .collect();
        self.touch(key);
        self.stats.lock().hits += 1;
        tdb_obs::add("cache.semantic.hits", 1);
        CacheLookup::Hit(points)
    }

    /// Best-effort LRU bump; conflicts are ignored (another query just
    /// bumped the same entry).
    fn touch(&self, key: &CacheInfoKey) {
        let mut txn = self.info.begin();
        if let Some(mut row) = txn.get(key) {
            row.last_used = self.tick();
            txn.put(key.clone(), row);
            if txn.commit().is_err() {
                self.stats.lock().conflicts += 1;
                tdb_obs::add("cache.semantic.conflicts", 1);
            }
        }
    }

    /// Algorithm 1, line 37: stores a freshly evaluated result, replacing
    /// any previous entry for `key` and evicting least-recently-used
    /// entries (across all quantities) until the byte budget holds.
    ///
    /// Retries once on a snapshot-isolation conflict; if the retry also
    /// conflicts the insert is abandoned (the competing writer cached an
    /// equivalent result).
    pub fn insert(
        &self,
        key: &CacheInfoKey,
        region: Box3,
        threshold: f64,
        points: &[ThresholdPoint],
        session: &mut IoSession,
    ) {
        for attempt in 0..2 {
            match self.try_insert(key, region, threshold, points, session) {
                Ok(()) => {
                    self.stats.lock().inserts += 1;
                    tdb_obs::add("cache.semantic.inserts", 1);
                    return;
                }
                Err(CommitError::WriteConflict) => {
                    self.stats.lock().conflicts += 1;
                    tdb_obs::add("cache.semantic.conflicts", 1);
                    if attempt == 1 {
                        return;
                    }
                }
            }
        }
    }

    fn try_insert(
        &self,
        key: &CacheInfoKey,
        region: Box3,
        threshold: f64,
        points: &[ThresholdPoint],
        session: &mut IoSession,
    ) -> Result<(), CommitError> {
        let new_bytes = entry_bytes(points.len() as u64);
        let mut info_txn = self.info.begin();
        let mut data_txn = self.data.begin();
        let mut evictions = 0u64;

        // replace any existing entry for this key
        let mut freed = 0u64;
        let mut drop_ordinals: Vec<u64> = Vec::new();
        if let Some(old) = info_txn.get(key) {
            freed += entry_bytes(old.npoints);
            drop_ordinals.push(old.ordinal);
        }

        // LRU eviction across all quantities until the budget fits
        let mut live: Vec<(CacheInfoKey, CacheInfoRow)> = info_txn
            .range(..)
            .into_iter()
            .filter(|(k, _)| k != key)
            .collect();
        live.sort_by_key(|(_, r)| r.last_used);
        let mut used: u64 = live.iter().map(|(_, r)| entry_bytes(r.npoints)).sum();
        let mut victims = live.into_iter();
        while used + new_bytes > self.config.budget_bytes + freed {
            let Some((vk, vr)) = victims.next() else {
                break;
            };
            used -= entry_bytes(vr.npoints);
            drop_ordinals.push(vr.ordinal);
            info_txn.delete(vk);
            evictions += 1;
        }
        for ordinal in drop_ordinals {
            for ((o, z), _) in data_txn.range((ordinal, 0)..=(ordinal, u64::MAX)) {
                data_txn.delete((o, z));
            }
        }

        let ordinal = self.next_ordinal.fetch_add(1, Ordering::Relaxed);
        // checksum over the rows in zindex order — the order a lookup
        // reads them back in
        // tdb-lint: allow(float-width) — cached rows hold the native f32
        // field values; the threshold itself stays f64 end to end
        let mut sorted: Vec<(u64, f32)> = points.iter().map(|p| (p.zindex, p.value)).collect();
        sorted.sort_unstable_by_key(|&(z, _)| z);
        let checksum = rows_checksum(sorted.iter().copied());
        info_txn.put(
            key.clone(),
            CacheInfoRow {
                ordinal,
                region,
                threshold,
                npoints: points.len() as u64,
                last_used: self.tick(),
                checksum,
            },
        );
        for p in points {
            data_txn.put((ordinal, p.zindex), p.value);
        }
        // injected silent corruption: flip one stored value's bits while
        // leaving the checksum stale, so the next lookup quarantines
        if let Some(plan) = &self.config.faults {
            if plan.cache_insert_corrupts(key_hash(key)) {
                if let Some(&(z, v)) = sorted.first() {
                    // tdb-lint: allow(float-width) — bit-flips the stored
                    // f32 row value, not a threshold comparison
                    data_txn.put((ordinal, z), f32::from_bits(v.to_bits() ^ 0x5A5A_5A5A));
                }
            }
        }
        // one sequential SSD write of the new entry
        session.charge(self.config.ssd, 1 + new_bytes / (64 * 1024), new_bytes);
        data_txn.commit()?;
        info_txn.commit()?;
        self.stats.lock().evictions += evictions;
        tdb_obs::add("cache.semantic.evictions", evictions);
        Ok(())
    }

    /// Chaos hook: flips the bits of one stored data row of `key`'s entry
    /// without touching its checksum, simulating silent SSD bit-rot.
    /// Returns `false` when the key has no entry with data rows to
    /// corrupt. The next covering lookup will quarantine the entry.
    pub fn corrupt_entry(&self, key: &CacheInfoKey) -> bool {
        let info_txn = self.info.begin();
        let Some(row) = info_txn.get(key) else {
            return false;
        };
        let mut data_txn = self.data.begin();
        let rows = data_txn.range((row.ordinal, 0)..=(row.ordinal, u64::MAX));
        let Some(((o, z), v)) = rows.into_iter().next() else {
            return false;
        };
        data_txn.put((o, z), f32::from_bits(v.to_bits() ^ 0x5A5A_5A5A));
        data_txn.commit().is_ok()
    }

    /// Drops the entry for one key (used by experiments to force misses).
    pub fn invalidate(&self, key: &CacheInfoKey) {
        let mut info_txn = self.info.begin();
        if let Some(row) = info_txn.get(key) {
            let mut data_txn = self.data.begin();
            for ((o, z), _) in data_txn.range((row.ordinal, 0)..=(row.ordinal, u64::MAX)) {
                data_txn.delete((o, z));
            }
            info_txn.delete(key.clone());
            let _ = data_txn.commit();
            let _ = info_txn.commit();
        }
    }

    /// Drops everything.
    pub fn clear(&self) {
        let txn = self.info.begin();
        let keys: Vec<CacheInfoKey> = txn.range(..).into_iter().map(|(k, _)| k).collect();
        for k in keys {
            self.invalidate(&k);
        }
    }

    /// Bytes currently used by live entries.
    pub fn used_bytes(&self) -> u64 {
        let txn = self.info.begin();
        txn.range(..)
            .into_iter()
            .map(|(_, r)| entry_bytes(r.npoints))
            .sum()
    }

    /// Number of live `cacheInfo` entries.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }
}

fn entry_bytes(npoints: u64) -> u64 {
    INFO_ROW_BYTES + npoints * DATA_ROW_BYTES
}

/// Checksum over `(zindex, value)` rows in iteration order (zindex order).
fn rows_checksum(rows: impl Iterator<Item = (u64, f32)>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (z, v) in rows {
        h = mix64(h ^ z);
        h = mix64(h ^ u64::from(v.to_bits()));
    }
    h
}

/// Deterministic hash of a cache key, the identity fault plans roll on.
fn key_hash(key: &CacheInfoKey) -> u64 {
    let mut h = mix64(u64::from(key.timestep));
    for b in key.dataset.bytes().chain(key.field.bytes()) {
        h = mix64(h ^ u64::from(b));
    }
    h
}

/// SplitMix64 finaliser (same permutation the fault plan rolls with).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_storage::device::{DeviceProfile, DeviceRegistry};

    fn mkcache(budget: u64) -> (SemanticCache, DeviceRegistry) {
        let mut reg = DeviceRegistry::new();
        let ssd = reg.register(DeviceProfile::ssd());
        (
            SemanticCache::new(CacheConfig {
                budget_bytes: budget,
                ssd,
                faults: None,
            }),
            reg,
        )
    }

    fn key(ts: u32) -> CacheInfoKey {
        CacheInfoKey {
            dataset: "mhd".into(),
            field: "velocity/curl_norm".into(),
            timestep: ts,
        }
    }

    fn pts(values: &[(u32, u32, u32, f32)]) -> Vec<ThresholdPoint> {
        values
            .iter()
            .map(|&(x, y, z, v)| ThresholdPoint::at(x, y, z, v))
            .collect()
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(64);
        let k = key(0);
        assert!(matches!(
            cache.lookup(&k, &region, 50.0, &mut s),
            CacheLookup::Miss
        ));
        let points = pts(&[(1, 2, 3, 55.0), (10, 10, 10, 80.0)]);
        cache.insert(&k, region, 50.0, &points, &mut s);
        match cache.lookup(&k, &region, 50.0, &mut s) {
            CacheLookup::Hit(got) => assert_eq!(got.len(), 2),
            other => panic!("expected hit, got {other:?}"),
        }
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.inserts), (1, 1, 1));
    }

    #[test]
    fn higher_threshold_filters_hit_lower_threshold_misses() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(64);
        let k = key(1);
        let points = pts(&[(0, 0, 0, 55.0), (1, 1, 1, 70.0), (2, 2, 2, 90.0)]);
        cache.insert(&k, region, 50.0, &points, &mut s);
        // same region, higher threshold: hit with filtering (paper: "the
        // ones that have a higher value are returned")
        match cache.lookup(&k, &region, 69.0, &mut s) {
            CacheLookup::Hit(got) => {
                assert_eq!(got.len(), 2);
                assert!(got.iter().all(|p| f64::from(p.value) >= 69.0));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // lower threshold than stored: the cache cannot answer
        assert!(matches!(
            cache.lookup(&k, &region, 30.0, &mut s),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn sub_region_hits_super_region_misses() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::new([0, 0, 0], [31, 31, 31]);
        let k = key(2);
        let points = pts(&[(5, 5, 5, 60.0), (40, 1, 1, 75.0)]);
        // note: point (40,1,1) lies outside the region; insert anyway to
        // verify box filtering on hits
        cache.insert(&k, region, 50.0, &points, &mut s);
        let sub = Box3::new([0, 0, 0], [10, 10, 10]);
        match cache.lookup(&k, &sub, 50.0, &mut s) {
            CacheLookup::Hit(got) => {
                assert_eq!(got.len(), 1);
                assert_eq!(got[0].coords(), (5, 5, 5));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let superbox = Box3::new([0, 0, 0], [63, 63, 63]);
        assert!(matches!(
            cache.lookup(&k, &superbox, 50.0, &mut s),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn different_timesteps_are_independent() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        cache.insert(&key(0), region, 10.0, &pts(&[(0, 0, 0, 20.0)]), &mut s);
        assert!(matches!(
            cache.lookup(&key(1), &region, 10.0, &mut s),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn replacement_updates_threshold() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        let k = key(3);
        cache.insert(&k, region, 80.0, &pts(&[(0, 0, 0, 90.0)]), &mut s);
        // re-evaluated at a lower threshold: replaces the entry
        cache.insert(
            &k,
            region,
            40.0,
            &pts(&[(0, 0, 0, 90.0), (1, 0, 0, 45.0)]),
            &mut s,
        );
        match cache.lookup(&k, &region, 40.0, &mut s) {
            CacheLookup::Hit(got) => assert_eq!(got.len(), 2),
            other => panic!("expected hit after replacement, got {other:?}"),
        }
        assert_eq!(cache.len(), 1, "old entry replaced, not duplicated");
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        // room for ~2 entries of 10 points each
        let budget = 2 * (INFO_ROW_BYTES + 10 * DATA_ROW_BYTES) + 8;
        let (cache, _) = mkcache(budget);
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        let tenpts: Vec<ThresholdPoint> = (0..10)
            .map(|i| ThresholdPoint::at(i, 0, 0, 50.0 + i as f32))
            .collect();
        cache.insert(&key(0), region, 10.0, &tenpts, &mut s);
        cache.insert(&key(1), region, 10.0, &tenpts, &mut s);
        // touch entry 0 so entry 1 is the LRU victim
        assert!(matches!(
            cache.lookup(&key(0), &region, 10.0, &mut s),
            CacheLookup::Hit(_)
        ));
        cache.insert(&key(2), region, 10.0, &tenpts, &mut s);
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.lookup(&key(1), &region, 10.0, &mut s),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup(&key(0), &region, 10.0, &mut s),
            CacheLookup::Hit(_)
        ));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= budget);
    }

    #[test]
    fn invalidate_and_clear() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        cache.insert(&key(0), region, 10.0, &pts(&[(0, 0, 0, 20.0)]), &mut s);
        cache.insert(&key(1), region, 10.0, &pts(&[(0, 0, 0, 20.0)]), &mut s);
        cache.invalidate(&key(0));
        assert!(matches!(
            cache.lookup(&key(0), &region, 10.0, &mut s),
            CacheLookup::Miss
        ));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn lookup_charges_ssd_not_hdd() {
        let (cache, reg) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        let many: Vec<ThresholdPoint> = (0..1000)
            .map(|i| ThresholdPoint::at(i % 16, (i / 16) % 16, 0, 60.0))
            .collect();
        // dedupe zindexes: at() may collide; rebuild uniquely
        let many: Vec<ThresholdPoint> = many
            .into_iter()
            .enumerate()
            .map(|(i, _)| ThresholdPoint {
                zindex: i as u64,
                value: 60.0,
            })
            .collect();
        cache.insert(&key(5), region, 50.0, &many, &mut s);
        let mut hit_session = IoSession::new();
        let _ = cache.lookup(&key(5), &region, 50.0, &mut hit_session);
        let ssd = hit_session.access(DeviceId(0));
        assert!(ssd.bytes >= 1000 * DATA_ROW_BYTES);
        // modelled time for the hit is far below a cold HDD scan of 1 GB
        let t = hit_session.makespan(&reg);
        assert!(t < 0.05, "cache hit should be milliseconds, got {t}");
    }

    #[test]
    fn corrupted_entry_is_quarantined_then_healed() {
        let (cache, _) = mkcache(1 << 20);
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        let k = key(7);
        let points = pts(&[(1, 1, 1, 60.0), (2, 2, 2, 70.0)]);
        cache.insert(&k, region, 50.0, &points, &mut s);
        assert!(cache.corrupt_entry(&k));
        assert!(matches!(
            cache.lookup(&k, &region, 50.0, &mut s),
            CacheLookup::Quarantined
        ));
        assert_eq!(cache.stats().quarantined, 1);
        // the rotten entry is gone: the next lookup is a plain miss
        assert!(matches!(
            cache.lookup(&k, &region, 50.0, &mut s),
            CacheLookup::Miss
        ));
        // recompute-and-reinsert heals; the healed entry answers exactly
        cache.insert(&k, region, 50.0, &points, &mut s);
        match cache.lookup(&k, &region, 50.0, &mut s) {
            CacheLookup::Hit(got) => {
                let mut want = points.clone();
                want.sort_unstable_by_key(|p| p.zindex);
                assert_eq!(got, want);
            }
            other => panic!("expected healed hit, got {other:?}"),
        }
    }

    #[test]
    fn injected_insert_corruption_is_detected_on_lookup() {
        use tdb_storage::faults::FaultRule;
        let mut reg = DeviceRegistry::new();
        let ssd = reg.register(DeviceProfile::ssd());
        let plan = FaultPlan::new(0)
            .with_rule(FaultRule::corrupt_cache_inserts(1.0))
            .shared();
        let cache = SemanticCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ssd,
            faults: Some(Arc::clone(&plan)),
        });
        let mut s = IoSession::new();
        let region = Box3::cube(16);
        let k = key(9);
        cache.insert(&k, region, 50.0, &pts(&[(3, 3, 3, 66.0)]), &mut s);
        assert!(plan.counts().corrupt >= 1, "insert fault must have fired");
        assert!(matches!(
            cache.lookup(&k, &region, 50.0, &mut s),
            CacheLookup::Quarantined
        ));
    }

    #[test]
    fn concurrent_insert_and_lookup_never_sees_partial_entry() {
        let (cache, _) = mkcache(1 << 22);
        let cache = std::sync::Arc::new(cache);
        let region = Box3::cube(64);
        let writer = {
            let c = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || {
                for ts in 0..20u32 {
                    let points: Vec<ThresholdPoint> = (0..500)
                        .map(|i| ThresholdPoint {
                            zindex: i,
                            value: 50.0 + (i % 10) as f32,
                        })
                        .collect();
                    let mut s = IoSession::new();
                    c.insert(&key(ts), region, 50.0, &points, &mut s);
                }
            })
        };
        let reader = {
            let c = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut seen_hits = 0u32;
                for _ in 0..200 {
                    for ts in 0..20u32 {
                        let mut s = IoSession::new();
                        if let CacheLookup::Hit(points) = c.lookup(&key(ts), &region, 50.0, &mut s)
                        {
                            // snapshot isolation: all 500 rows or none
                            assert_eq!(points.len(), 500, "partial entry visible");
                            seen_hits += 1;
                        }
                    }
                }
                seen_hits
            })
        };
        writer.join().unwrap();
        // the concurrent reader may be scheduled entirely before the writer
        // on a loaded machine, so only the partial-entry assertion above is
        // required of it; visibility is asserted once the writer has joined
        reader.join().unwrap();
        for ts in 0..20u32 {
            let mut s = IoSession::new();
            match cache.lookup(&key(ts), &region, 50.0, &mut s) {
                CacheLookup::Hit(points) => assert_eq!(points.len(), 500),
                other => panic!("entry {ts} not visible after writer join: {other:?}"),
            }
        }
    }
}
