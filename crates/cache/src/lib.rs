//! The application-aware semantic cache for threshold-query results.
//!
//! "Rather than caching just data ... we cache query results along with
//! query metadata and subsequent queries are evaluated against the cache"
//! (paper §1). Each database node owns a local cache made of two tables
//! residing on its SSD:
//!
//! * `cacheInfo` — per (dataset, field, time-step): the spatial region
//!   examined, the threshold used, and bookkeeping (ordinal, LRU stamp),
//! * `cacheData` — per ordinal: every grid point whose field norm exceeded
//!   the stored threshold, keyed by the point's Morton code.
//!
//! A query hits iff an entry exists for its (dataset, field, time-step),
//! the requested threshold is **at or above** the stored one, and the query
//! box lies inside the stored region (Algorithm 1, line 12). Hits are
//! answered by an index-range scan of `cacheData` filtered by box and
//! threshold. Misses are recomputed from raw data and the entry replaced.
//! Both paths run as snapshot-isolation transactions ([`tdb_storage::mvcc`])
//! and eviction is least-recently-used across all quantities.

pub mod pdf;
pub mod semantic;
pub mod stats;

pub use pdf::{PdfCache, PdfKey, PdfLookup};
pub use semantic::{CacheConfig, CacheInfoKey, CacheLookup, SemanticCache, ThresholdPoint};
pub use stats::CacheStats;
