//! Caching PDF (histogram) query results.
//!
//! "Nevertheless, it [the cache] can easily be extended to cache the
//! results of other query types as well if that becomes advantageous"
//! (paper §4). PDFs are natural candidates: like threshold queries they
//! scan a whole time-step, their results are tiny, and scientists consult
//! them repeatedly to pick thresholds (Fig. 2). Unlike threshold results
//! a histogram cannot be filtered to a sub-region or re-binned, so a hit
//! requires the *exact* region and binning.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use tdb_storage::device::{DeviceId, IoSession};
use tdb_storage::mvcc::MvccStore;
use tdb_zorder::Box3;

use crate::semantic::CacheInfoKey;
use crate::stats::CacheStats;

/// Key of a cached PDF: the quantity plus the exact binning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdfKey {
    pub base: CacheInfoKey,
    /// Bit patterns of the f64 binning parameters (exact match).
    pub origin_bits: u64,
    pub width_bits: u64,
    pub nbins: u32,
}

impl PdfKey {
    /// Builds a key from the query parameters.
    pub fn new(base: CacheInfoKey, origin: f64, width: f64, nbins: u32) -> Self {
        Self {
            base,
            origin_bits: origin.to_bits(),
            width_bits: width.to_bits(),
            nbins,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct PdfEntry {
    region: Box3,
    counts: Vec<u64>,
    last_used: u64,
}

fn entry_bytes(nbins: usize) -> u64 {
    96 + nbins as u64 * 8
}

/// Result of a PDF-cache probe.
#[derive(Debug, Clone)]
pub enum PdfLookup {
    Hit(Vec<u64>),
    Miss,
}

/// Per-node cache of histogram results, sharing the node's SSD.
pub struct PdfCache {
    store: MvccStore<PdfKey, PdfEntry>,
    ssd: DeviceId,
    budget_bytes: u64,
    lru_clock: AtomicU64,
    stats: Mutex<CacheStats>,
}

impl PdfCache {
    /// Empty cache with a byte budget on the node's SSD.
    pub fn new(ssd: DeviceId, budget_bytes: u64) -> Self {
        Self {
            store: MvccStore::new(),
            ssd,
            budget_bytes,
            lru_clock: AtomicU64::new(1),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    fn tick(&self) -> u64 {
        self.lru_clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Probes for a histogram over exactly `region` with exactly this
    /// binning.
    pub fn lookup(&self, key: &PdfKey, region: &Box3, session: &mut IoSession) -> PdfLookup {
        let txn = self.store.begin();
        session.charge(self.ssd, 1, entry_bytes(key.nbins as usize));
        match txn.get(key) {
            Some(entry) if entry.region == *region => {
                // best-effort LRU bump
                let mut bump = self.store.begin();
                if let Some(mut e) = bump.get(key) {
                    e.last_used = self.tick();
                    bump.put(key.clone(), e);
                    let _ = bump.commit();
                }
                self.stats.lock().hits += 1;
                tdb_obs::add("cache.pdf.hits", 1);
                PdfLookup::Hit(entry.counts)
            }
            _ => {
                self.stats.lock().misses += 1;
                tdb_obs::add("cache.pdf.misses", 1);
                PdfLookup::Miss
            }
        }
    }

    /// Stores a freshly computed histogram, evicting LRU entries to fit.
    pub fn insert(&self, key: &PdfKey, region: Box3, counts: Vec<u64>, session: &mut IoSession) {
        let new_bytes = entry_bytes(counts.len());
        session.charge(self.ssd, 1, new_bytes);
        let mut txn = self.store.begin();
        let mut live: Vec<(PdfKey, PdfEntry)> = txn
            .range(..)
            .into_iter()
            .filter(|(k, _)| k != key)
            .collect();
        live.sort_by_key(|(_, e)| e.last_used);
        let mut used: u64 = live.iter().map(|(_, e)| entry_bytes(e.counts.len())).sum();
        let mut victims = live.into_iter();
        let mut evictions = 0;
        while used + new_bytes > self.budget_bytes {
            let Some((vk, ve)) = victims.next() else {
                break;
            };
            used -= entry_bytes(ve.counts.len());
            txn.delete(vk);
            evictions += 1;
        }
        txn.put(
            key.clone(),
            PdfEntry {
                region,
                counts,
                last_used: self.tick(),
            },
        );
        if txn.commit().is_ok() {
            let mut s = self.stats.lock();
            s.inserts += 1;
            s.evictions += evictions;
            tdb_obs::add("cache.pdf.inserts", 1);
            tdb_obs::add("cache.pdf.evictions", evictions);
        } else {
            self.stats.lock().conflicts += 1;
            tdb_obs::add("cache.pdf.conflicts", 1);
        }
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut txn = self.store.begin();
        for (k, _) in txn.range(..) {
            txn.delete(k);
        }
        let _ = txn.commit();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no histograms are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_storage::device::{DeviceProfile, DeviceRegistry};

    fn key(ts: u32, nbins: u32) -> PdfKey {
        PdfKey::new(
            CacheInfoKey {
                dataset: "mhd".into(),
                field: "velocity/curl_norm".into(),
                timestep: ts,
            },
            0.0,
            10.0,
            nbins,
        )
    }

    fn mk() -> (PdfCache, DeviceRegistry) {
        let mut reg = DeviceRegistry::new();
        let ssd = reg.register(DeviceProfile::ssd());
        (PdfCache::new(ssd, 4096), reg)
    }

    #[test]
    fn miss_insert_hit() {
        let (cache, _) = mk();
        let mut s = IoSession::new();
        let region = Box3::cube(32);
        let k = key(0, 10);
        assert!(matches!(cache.lookup(&k, &region, &mut s), PdfLookup::Miss));
        cache.insert(&k, region, vec![5, 4, 3], &mut s);
        match cache.lookup(&k, &region, &mut s) {
            PdfLookup::Hit(counts) => assert_eq!(counts, vec![5, 4, 3]),
            PdfLookup::Miss => panic!("expected hit"),
        }
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.inserts), (1, 1, 1));
    }

    #[test]
    fn binning_and_region_must_match_exactly() {
        let (cache, _) = mk();
        let mut s = IoSession::new();
        let region = Box3::cube(32);
        cache.insert(&key(0, 10), region, vec![1; 11], &mut s);
        // different bin count
        assert!(matches!(
            cache.lookup(&key(0, 20), &region, &mut s),
            PdfLookup::Miss
        ));
        // different origin
        let mut k2 = key(0, 10);
        k2.origin_bits = 1.0f64.to_bits();
        assert!(matches!(
            cache.lookup(&k2, &region, &mut s),
            PdfLookup::Miss
        ));
        // different region
        let sub = Box3::cube(16);
        assert!(matches!(
            cache.lookup(&key(0, 10), &sub, &mut s),
            PdfLookup::Miss
        ));
    }

    #[test]
    fn lru_eviction_under_budget() {
        let mut reg = DeviceRegistry::new();
        let ssd = reg.register(DeviceProfile::ssd());
        // room for ~2 entries of 10 bins
        let cache = PdfCache::new(ssd, 2 * entry_bytes(11) + 8);
        let mut s = IoSession::new();
        let region = Box3::cube(8);
        cache.insert(&key(0, 10), region, vec![0; 11], &mut s);
        cache.insert(&key(1, 10), region, vec![0; 11], &mut s);
        // touch 0, insert 2 → 1 is evicted
        let _ = cache.lookup(&key(0, 10), &region, &mut s);
        cache.insert(&key(2, 10), region, vec![0; 11], &mut s);
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.lookup(&key(1, 10), &region, &mut s),
            PdfLookup::Miss
        ));
        assert!(matches!(
            cache.lookup(&key(0, 10), &region, &mut s),
            PdfLookup::Hit(_)
        ));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_empties() {
        let (cache, _) = mk();
        let mut s = IoSession::new();
        cache.insert(&key(0, 10), Box3::cube(8), vec![1; 11], &mut s);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
