//! Shared helpers for the benchmark harness, repo-level integration tests
//! and examples.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

use tdb_cluster::ClusterConfig;
use tdb_core::{ServiceConfig, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

static UNIQUE: AtomicU64 = AtomicU64::new(0);
static CLEAN_STALE: Once = Once::new();

/// Best-effort removal of `thresholdb_*` scratch dirs left behind by
/// crashed or killed runs. Only dirs untouched for a day are removed, so
/// concurrent test processes never race each other on live dirs; when two
/// sweeps race on the *same* stale dir, whoever loses sees `NotFound`
/// part-way through its `remove_dir_all` — that is success, not failure.
fn clean_stale_scratch() {
    let cutoff = Duration::from_secs(24 * 60 * 60);
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return;
    };
    for entry in entries.flatten() {
        if !entry
            .file_name()
            .to_string_lossy()
            .starts_with("thresholdb_")
        {
            continue;
        }
        // the entry may vanish between readdir and stat: treat as cleaned
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > cutoff);
        if stale {
            match std::fs::remove_dir_all(entry.path()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => eprintln!(
                    "warning: could not sweep stale scratch dir {}: {e}",
                    entry.path().display()
                ),
            }
        }
    }
}

/// A fresh scratch directory under the system temp dir. The first call per
/// process also sweeps out stale scratch dirs from previous runs.
pub fn scratch_dir(tag: &str) -> PathBuf {
    CLEAN_STALE.call_once(clean_stale_scratch);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("thresholdb_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builds a small MHD service for tests: `n`-cube grid, `timesteps` steps,
/// `nodes` database nodes.
pub fn test_service(tag: &str, n: usize, timesteps: u32, nodes: usize) -> TurbulenceService {
    test_service_with(tag, n, timesteps, nodes, |_| {})
}

/// Like [`test_service`] but lets the caller adjust the cluster
/// configuration (e.g. enable scan coalescing) before the build.
pub fn test_service_with(
    tag: &str,
    n: usize,
    timesteps: u32,
    nodes: usize,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> TurbulenceService {
    let mut cluster = ClusterConfig {
        num_nodes: nodes,
        procs_per_node: 2,
        arrays_per_node: 2,
        chunk_atoms: 2,
        ..ClusterConfig::default()
    };
    tweak(&mut cluster);
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(n, timesteps, 0x7db),
        cluster,
        limits: Default::default(),
        data_dir: scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("service build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        assert!(a.exists() && b.exists());
    }
}
