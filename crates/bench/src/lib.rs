//! Shared helpers for the benchmark harness, repo-level integration tests
//! and examples.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tdb_cluster::ClusterConfig;
use tdb_core::{ServiceConfig, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("thresholdb_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builds a small MHD service for tests: `n`-cube grid, `timesteps` steps,
/// `nodes` database nodes.
pub fn test_service(tag: &str, n: usize, timesteps: u32, nodes: usize) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(n, timesteps, 0x7db),
        cluster: ClusterConfig {
            num_nodes: nodes,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("service build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        assert!(a.exists() && b.exists());
    }
}
