//! Shared helpers for the benchmark harness, repo-level integration tests
//! and examples.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

use tdb_cluster::ClusterConfig;
use tdb_core::{ServiceConfig, TurbulenceService};
use tdb_turbgen::SyntheticDataset;
use tdb_wire::Json;

static UNIQUE: AtomicU64 = AtomicU64::new(0);
static CLEAN_STALE: Once = Once::new();

/// Best-effort removal of `thresholdb_*` scratch dirs left behind by
/// crashed or killed runs. Only dirs untouched for a day are removed, so
/// concurrent test processes never race each other on live dirs; when two
/// sweeps race on the *same* stale dir, whoever loses sees `NotFound`
/// part-way through its `remove_dir_all` — that is success, not failure.
fn clean_stale_scratch() {
    let cutoff = Duration::from_secs(24 * 60 * 60);
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return;
    };
    for entry in entries.flatten() {
        if !entry
            .file_name()
            .to_string_lossy()
            .starts_with("thresholdb_")
        {
            continue;
        }
        // the entry may vanish between readdir and stat: treat as cleaned
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > cutoff);
        if stale {
            match std::fs::remove_dir_all(entry.path()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => eprintln!(
                    "warning: could not sweep stale scratch dir {}: {e}",
                    entry.path().display()
                ),
            }
        }
    }
}

/// A fresh scratch directory under the system temp dir. The first call per
/// process also sweeps out stale scratch dirs from previous runs.
pub fn scratch_dir(tag: &str) -> PathBuf {
    CLEAN_STALE.call_once(clean_stale_scratch);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("thresholdb_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builds a small MHD service for tests: `n`-cube grid, `timesteps` steps,
/// `nodes` database nodes.
pub fn test_service(tag: &str, n: usize, timesteps: u32, nodes: usize) -> TurbulenceService {
    test_service_with(tag, n, timesteps, nodes, |_| {})
}

/// Like [`test_service`] but lets the caller adjust the cluster
/// configuration (e.g. enable scan coalescing) before the build.
pub fn test_service_with(
    tag: &str,
    n: usize,
    timesteps: u32,
    nodes: usize,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> TurbulenceService {
    let mut cluster = ClusterConfig {
        num_nodes: nodes,
        procs_per_node: 2,
        arrays_per_node: 2,
        chunk_atoms: 2,
        ..ClusterConfig::default()
    };
    tweak(&mut cluster);
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(n, timesteps, 0x7db),
        cluster,
        limits: Default::default(),
        data_dir: scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("service build")
}

/// Today's civil date in UTC as `(year, month, day)`, derived from the
/// system clock (no calendar crate offline; days-from-epoch algorithm per
/// Howard Hinnant's `civil_from_days`).
pub fn civil_date_utc() -> (i64, u32, u32) {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

/// The dated benchmark trend file for today, e.g. `BENCH_2026-01-31.json`.
/// One file per day: unlike `repro_metrics.json` (overwritten every run),
/// these accumulate in the repo as a performance trend.
pub fn bench_trend_path() -> String {
    let (y, m, d) = civil_date_utc();
    format!("BENCH_{y:04}-{m:02}-{d:02}.json")
}

/// The workspace root, anchored at compile time (this crate lives at
/// `crates/bench`). `cargo bench`/`cargo test` set the binary's working
/// directory to the *package* root, `cargo run` keeps the caller's, so
/// anchoring is the only way every harness writes the same trend file.
fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

/// Merges `doc` under the key `section` into today's `BENCH_<date>.json`
/// at the workspace root, preserving sections written by other harnesses
/// (the repro binary and the hotpath bench share one trend file per day).
/// Returns the path written.
pub fn merge_into_trend(section: &str, doc: Json) -> std::io::Result<String> {
    merge_into_trend_at(&workspace_root(), section, doc)
}

fn merge_into_trend_at(dir: &std::path::Path, section: &str, doc: Json) -> std::io::Result<String> {
    use std::io::{Read, Seek, Write};
    use std::os::unix::io::AsRawFd;

    let path = dir.join(bench_trend_path());
    // Concurrent harnesses (repro, cargo bench, parallel CI jobs) all merge
    // into the same dated file. An exclusive flock on the trend file itself
    // serialises the read-modify-write, so no section is ever lost to a
    // racing writer; the lock dies with the file handle even on panic.
    // deliberately NOT truncating at open: existing sections must be read
    // back first, and truncation happens under the lock via set_len
    #[allow(clippy::suspicious_open_options)]
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .open(&path)?;
    if unsafe { libc::flock(file.as_raw_fd(), libc::LOCK_EX) } != 0 {
        return Err(std::io::Error::last_os_error());
    }
    let mut contents = String::new();
    let result = file.read_to_string(&mut contents).and_then(|_| {
        let mut root = Json::parse(&contents).unwrap_or_else(|_| Json::Obj(Default::default()));
        if !matches!(root, Json::Obj(_)) {
            root = Json::Obj(Default::default());
        }
        if let Json::Obj(m) = &mut root {
            let (y, mo, d) = civil_date_utc();
            m.insert(
                "date".to_string(),
                Json::Str(format!("{y:04}-{mo:02}-{d:02}")),
            );
            m.insert(section.to_string(), doc);
        }
        file.seek(std::io::SeekFrom::Start(0))?;
        file.set_len(0)?;
        file.write_all(root.encode().as_bytes())
    });
    unsafe { libc::flock(file.as_raw_fd(), libc::LOCK_UN) };
    result?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_is_sane() {
        let (y, m, d) = civil_date_utc();
        assert!((2024..2124).contains(&y));
        assert!((1..=12).contains(&m));
        assert!((1..=31).contains(&d));
        assert_eq!(
            bench_trend_path(),
            format!("BENCH_{y:04}-{m:02}-{d:02}.json")
        );
    }

    #[test]
    fn trend_merge_preserves_other_sections() {
        let dir = scratch_dir("trend");
        merge_into_trend_at(&dir, "a", Json::Num(1.0)).expect("write a");
        merge_into_trend_at(&dir, "b", Json::Num(2.0)).expect("write b");
        let root =
            Json::parse(&std::fs::read_to_string(dir.join(bench_trend_path())).expect("read"))
                .expect("parse");
        assert_eq!(root.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(root.get("b").and_then(Json::as_f64), Some(2.0));
        assert!(root.get("date").and_then(Json::as_str).is_some());
    }

    #[test]
    fn concurrent_trend_merges_lose_no_section() {
        let dir = scratch_dir("trend_race");
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    merge_into_trend_at(&dir, &format!("s{i}"), Json::Num(i as f64))
                        .expect("merge");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("merge thread");
        }
        let root =
            Json::parse(&std::fs::read_to_string(dir.join(bench_trend_path())).expect("read"))
                .expect("parse");
        for i in 0..8 {
            assert_eq!(
                root.get(&format!("s{i}")).and_then(Json::as_f64),
                Some(i as f64),
                "section s{i} lost in concurrent merge"
            );
        }
    }

    #[test]
    fn scratch_dirs_are_unique() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        assert!(a.exists() && b.exists());
    }
}
