//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```sh
//! cargo run --release -p tdb-bench --bin repro           # everything
//! cargo run --release -p tdb-bench --bin repro -- table1 # one experiment
//! TDB_GRID=256 cargo run --release -p tdb-bench --bin repro
//! ```
//!
//! Experiments: `fig2 fig3 fig4 table1 fig7a fig7b fig8 fig9 local
//! hitratio concurrent compression replication`. Absolute numbers differ from the
//! paper (simulated cluster, smaller grid); EXPERIMENTS.md records the
//! paper-vs-measured comparison. `TDB_BENCH_SMOKE=1` shrinks the grid to
//! 32³ for CI smoke runs.

use std::collections::BTreeMap;

use tdb_wire::Json;

use tdb_analysis::{fof_clusters_4d, SpaceTimePoint};
use tdb_cluster::{ClusterConfig, CompressionConfig};
use tdb_core::baseline::local_evaluation_estimate;
use tdb_core::{DerivedField, QueryMode, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_storage::{DeviceProfile, FaultPlan};
use tdb_turbgen::SyntheticDataset;

/// The paper's threshold selectivities on the MHD dataset: fractions of
/// all grid points above thresholds 80 / 60 / 44 (≈4 300, 87 000 and
/// 909 000 points of 1024³).
const FRACTIONS: [(f64, &str, f64); 3] = [
    (3.95e-6, "high (80.0)", 80.0),
    (8.06e-5, "medium (60.0)", 60.0),
    (8.47e-4, "low (44.0)", 44.0),
];

struct Repro {
    service: TurbulenceService,
    grid_n: usize,
    timesteps: u32,
    /// threshold per selectivity tier, per (field, derived)
    thresholds: BTreeMap<(String, String), [f64; 3]>,
    /// machine-readable results, written to repro_results.json
    results: Vec<Json>,
    /// shared-vs-independent decode deltas, written to repro_metrics.json
    concurrency: Vec<Json>,
    /// per-codec byte/accuracy sweep rows, written to repro_metrics.json
    compression: Vec<Json>,
    /// availability/tail-latency vs replication factor rows, written to
    /// repro_metrics.json
    replication: Vec<Json>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec![
            "fig2",
            "fig3",
            "fig4",
            "table1",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "local",
            "hitratio",
            "concurrent",
            "compression",
            "replication",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let smoke = std::env::var("TDB_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let grid_n: usize = std::env::var("TDB_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 32 } else { 128 });
    let timesteps: u32 = if wanted.contains(&"fig3") { 8 } else { 2 };

    println!("== ThresholDB paper reproduction ==");
    println!("grid {grid_n}³ MHD-like dataset, {timesteps} time-steps, 4 nodes x 4 arrays\n");
    let t0 = std::time::Instant::now();
    let service = build_service(grid_n, timesteps, 4, "repro_main");
    println!(
        "archive built and bulk-loaded in {:.1}s\n",
        t0.elapsed().as_secs_f64()
    );

    let mut repro = Repro {
        service,
        grid_n,
        timesteps,
        thresholds: BTreeMap::new(),
        results: Vec::new(),
        concurrency: Vec::new(),
        compression: Vec::new(),
        replication: Vec::new(),
    };
    for exp in wanted {
        let t = std::time::Instant::now();
        match exp {
            "fig2" => repro.fig2(),
            "fig3" => repro.fig3(),
            "fig4" => repro.fig4(),
            "table1" | "fig6" => repro.table1(),
            "fig7a" => repro.fig7a(),
            "fig7b" => repro.fig7b(),
            "fig8" => repro.fig8(),
            "fig9" => repro.fig9(),
            "local" => repro.local(),
            "hitratio" => repro.hitratio(),
            "concurrent" => repro.concurrent(),
            "compression" => repro.compression(),
            "replication" => repro.replication(),
            other => eprintln!("unknown experiment '{other}', skipping"),
        }
        repro.results.push(Json::obj([
            ("experiment", Json::Str(exp.to_string())),
            ("harness_wall_s", Json::Num(t.elapsed().as_secs_f64())),
        ]));
    }
    // persist every recorded measurement for downstream analysis
    let doc = Json::obj([
        ("grid", Json::Num(grid_n as f64)),
        ("timesteps", Json::Num(f64::from(timesteps))),
        ("results", Json::Arr(repro.results.clone())),
    ]);
    let path = "repro_results.json";
    if let Err(e) = std::fs::write(path, doc.encode()) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("(machine-readable results written to {path})");
    }
    // process-wide observability counters accumulated across the whole run:
    // buffer-pool traffic, cache hits/misses, per-device I/O, query outcomes
    let snap = repro.service.metrics_snapshot();
    let metrics_doc = Json::obj([
        ("concurrency", Json::Arr(repro.concurrency.clone())),
        ("compression", Json::Arr(repro.compression.clone())),
        ("replication", Json::Arr(repro.replication.clone())),
        (
            "counters",
            Json::Obj(
                snap.counters
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                snap.gauges
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v as f64)))
                    .collect(),
            ),
        ),
    ]);
    let mpath = "repro_metrics.json";
    if let Err(e) = std::fs::write(mpath, metrics_doc.encode()) {
        eprintln!("could not write {mpath}: {e}");
    } else {
        println!("(metrics snapshot written to {mpath})");
    }
    // repro_metrics.json is overwritten every run; the dated trend file
    // keeps one snapshot per day so regressions stay visible in history
    match tdb_bench::merge_into_trend("repro_metrics", metrics_doc) {
        Ok(tpath) => println!("(trend snapshot merged into {tpath})"),
        Err(e) => eprintln!("could not write trend file: {e}"),
    }
}

fn build_service(grid_n: usize, timesteps: u32, nodes: usize, tag: &str) -> TurbulenceService {
    build_service_with(grid_n, timesteps, nodes, tag, |_| {})
}

fn build_service_with(
    grid_n: usize,
    timesteps: u32,
    nodes: usize,
    tag: &str,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> TurbulenceService {
    let mut cluster = ClusterConfig {
        num_nodes: nodes,
        procs_per_node: 4,
        arrays_per_node: 4,
        chunk_atoms: if grid_n >= 128 { 4 } else { 2 },
        // stand-in for the 2.66 GHz 2008-era nodes (EXPERIMENTS.md)
        compute_scale: 6.0,
        ..ClusterConfig::default()
    };
    tweak(&mut cluster);
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(grid_n, timesteps, 0x7db2015),
        cluster,
        limits: Default::default(),
        data_dir: std::env::temp_dir().join(format!("thresholdb_{tag}_{grid_n}")),
    };
    TurbulenceService::build(config).expect("service build")
}

impl Repro {
    /// Thresholds matching the paper's three selectivity tiers.
    fn tiers(&mut self, raw: &str, derived: DerivedField) -> [f64; 3] {
        let key = (raw.to_string(), derived.name());
        if let Some(t) = self.thresholds.get(&key) {
            return *t;
        }
        let t = std::array::from_fn(|i| {
            self.service
                .threshold_for_fraction(raw, derived, 0, FRACTIONS[i].0)
                .expect("threshold")
        });
        self.thresholds.insert(key, t);
        t
    }

    fn cold_query(&self, q: &ThresholdQuery) -> tdb_core::ThresholdResult {
        self.service.cluster().clear_buffer_pools();
        self.service.get_threshold(q).expect("query")
    }

    // --- Figure 2: PDF of the vorticity norm -----------------------------
    fn fig2(&mut self) {
        println!("---- Figure 2: PDF of the vorticity norm (one time-step) ----");
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
        let pdf = self.service.get_pdf(&q, 0.0, 10.0, 9).expect("pdf");
        println!("{:>10} | {:>12} | log10", "bin", "points");
        for i in 0..=pdf.histogram.nbins() {
            let (lo, hi) = pdf.histogram.bin_range(i);
            let label = if hi.is_infinite() {
                format!("[{lo:.0},..)")
            } else {
                format!("[{lo:.0},{hi:.0})")
            };
            let c = pdf.histogram.count(i);
            let log = if c > 0 {
                (c as f64).log10()
            } else {
                f64::NEG_INFINITY
            };
            println!("{label:>10} | {c:>12} | {log:5.2}");
        }
        println!("paper shape: monotone log-decay from ~1e9 to ~1e1 over bins [0,10)..[90,..)\n");
    }

    // --- Figure 3: 4-D FoF cluster of the most intense event --------------
    fn fig3(&mut self) {
        println!("---- Figure 3: 4-D cluster containing the most intense event ----");
        let [_, _, low] = self.tiers("velocity", DerivedField::CurlNorm);
        let mut spacetime: Vec<SpaceTimePoint> = Vec::new();
        for t in 0..self.timesteps {
            let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, t, low);
            let r = self.service.get_threshold(&q).expect("query");
            spacetime.extend(
                r.points
                    .iter()
                    .map(|&point| SpaceTimePoint { timestep: t, point }),
            );
        }
        let dims = {
            let (nx, ny, nz) = self.service.dataset().grid.dims();
            (nx as u32, ny as u32, nz as u32)
        };
        let clusters = fof_clusters_4d(&spacetime, dims, 2, 1);
        println!(
            "{} space-time points clustered into {} 4-D clusters",
            spacetime.len(),
            clusters.len()
        );
        let c = &clusters[0];
        println!(
            "most intense event: |ω| = {:.1} at {:?}, t = {} — cluster of {} points spanning {} steps",
            c.peak_value, c.peak_location, c.peak_timestep, c.size, c.timespan
        );
        let per_step: Vec<usize> = (0..self.timesteps)
            .map(|t| {
                c.members
                    .iter()
                    .filter(|&&m| spacetime[m].timestep == t)
                    .count()
            })
            .collect();
        println!("members per time-step: {per_step:?}");
        println!("paper shape: the strongest cluster develops over several steps and interacts with multiple worms\n");
    }

    // --- Figure 4: points above 7x RMS ------------------------------------
    fn fig4(&mut self) {
        println!("---- Figure 4: points above multiples of the vorticity RMS ----");
        let stats = self
            .service
            .derived_stats("velocity", DerivedField::CurlNorm, 0)
            .expect("stats");
        let total = self.service.dataset().grid.num_points() as f64;
        println!(
            "vorticity rms = {:.2}, max = {:.2} ({:.1}x rms)",
            stats.rms,
            stats.max,
            stats.max / stats.rms
        );
        for k in [7.0, 8.0] {
            let q = ThresholdQuery::whole_timestep(
                "velocity",
                DerivedField::CurlNorm,
                0,
                k * stats.rms,
            );
            let r = self.service.get_threshold(&q).expect("query");
            println!(
                "|ω| >= {k}x rms: {} points ({:.5}% of grid)",
                r.points.len(),
                100.0 * r.points.len() as f64 / total
            );
        }
        println!(
            "paper: 2.4e5 points above 7x rms, 2.6e5 above 8x rms (0.022% / 0.024% of 1024³)\n"
        );
    }

    // --- Table 1 / Figure 6: cache effectiveness ---------------------------
    fn table1(&mut self) {
        println!("---- Table 1 / Figure 6: effectiveness of caching ----");
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        println!(
            "{:>14} | {:>9} | {:>12} | {:>12} | {:>12}",
            "tier", "points", "no cache (s)", "miss (s)", "hit (s)"
        );
        for (i, (frac, label, _)) in FRACTIONS.iter().enumerate() {
            let k = tiers[i];
            let mk = |use_cache: bool| {
                let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k);
                if use_cache {
                    q
                } else {
                    q.without_cache()
                }
            };
            // no cache
            let no_cache = avg(3, || self.cold_query(&mk(false)).breakdown.total_s());
            // cache miss: drop the entry before each run (paper protocol)
            let miss = avg(3, || {
                self.service.cluster().invalidate_cache_entry(
                    "velocity",
                    DerivedField::CurlNorm,
                    0,
                );
                self.cold_query(&mk(true)).breakdown.total_s()
            });
            // cache hit: warm once, then measure
            let warm = self.service.get_threshold(&mk(true)).expect("warm");
            let npoints = warm.points.len();
            let hit = avg(3, || {
                self.service
                    .get_threshold(&mk(true))
                    .expect("hit")
                    .breakdown
                    .total_s()
            });
            println!("{label:>14} | {npoints:>9} | {no_cache:>12.3} | {miss:>12.3} | {hit:>12.3}");
            self.results.push(Json::obj([
                ("experiment", Json::Str("table1".into())),
                ("tier", Json::Str(label.to_string())),
                ("selectivity", Json::Num(*frac)),
                ("points", Json::Num(npoints as f64)),
                ("no_cache_s", Json::Num(no_cache)),
                ("miss_s", Json::Num(miss)),
                ("hit_s", Json::Num(hit)),
            ]));
        }
        println!("paper (1024³, 4 nodes): 97.1/100.2/0.5  113.7/115.9/1.2  111.6/115.0/9.1 s");
        println!("shape: miss ≈ no-cache (probe overhead <3%), hit >10x faster");
        println!(
            "note: at {0}³ the user round-trip floors the hit column; the server-side",
            self.grid_n
        );
        println!("      (cache+io+compute) hit/miss ratio and larger grids (TDB_GRID=256)");
        println!("      recover the paper's >10x end-to-end gap\n");
    }

    // --- Figure 7(a): scale-up ---------------------------------------------
    fn fig7a(&mut self) {
        println!("---- Figure 7(a): scale-up, 1-8 processes per node (4 nodes) ----");
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        println!(
            "{:>14} | {:>7} | {:>7} | {:>7} | {:>7}",
            "tier", "p=1", "p=2", "p=4", "p=8"
        );
        for (i, (_, label, _)) in FRACTIONS.iter().enumerate() {
            let k = tiers[i];
            let mut times = Vec::new();
            for procs in [1usize, 2, 4, 8] {
                let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
                    .without_cache()
                    .with_procs(procs);
                let b = self.cold_query(&q).breakdown;
                times.push(b.io_s + b.compute_s);
            }
            let s: Vec<String> = times
                .iter()
                .map(|t| format!("{:.2}x", times[0] / t))
                .collect();
            println!(
                "{label:>14} | {:>7} | {:>7} | {:>7} | {:>7}",
                s[0], s[1], s[2], s[3]
            );
        }
        println!("paper: ≈2x at p=2, ≈2.6x at p=4, little further gain at p=8\n");
    }

    // --- Figure 7(b): scale-out --------------------------------------------
    fn fig7b(&mut self) {
        println!("---- Figure 7(b): scale-out, 1-8 nodes (1 process per node) ----");
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        // smaller grid per-cluster build cost: reuse main grid but build
        // separate clusters with 1, 2, 4, 8 nodes
        let mut services = Vec::new();
        for nodes in [1usize, 2, 4, 8] {
            services.push((
                nodes,
                build_service(self.grid_n, 1, nodes, &format!("repro_so{nodes}")),
            ));
        }
        println!(
            "{:>14} | {:>7} | {:>7} | {:>7} | {:>7}",
            "tier", "n=1", "n=2", "n=4", "n=8"
        );
        for (i, (_, label, _)) in FRACTIONS.iter().enumerate() {
            let k = tiers[i];
            let mut times = Vec::new();
            for (_, svc) in &services {
                let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
                    .without_cache()
                    .with_procs(1);
                svc.cluster().clear_buffer_pools();
                let b = svc.get_threshold(&q).expect("query").breakdown;
                times.push(b.io_s + b.compute_s);
            }
            let s: Vec<String> = times
                .iter()
                .map(|t| format!("{:.2}x", times[0] / t))
                .collect();
            println!(
                "{label:>14} | {:>7} | {:>7} | {:>7} | {:>7}",
                s[0], s[1], s[2], s[3]
            );
        }
        println!("paper: nearly perfect linear speedup\n");
    }

    // --- Figure 8: total vs I/O-only ----------------------------------------
    fn fig8(&mut self) {
        println!("---- Figure 8: total running time vs I/O-only (medium threshold) ----");
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        let k = tiers[1];
        println!(
            "{:>6} | {:>10} | {:>10} | {:>6}",
            "procs", "total (s)", "io-only (s)", "io %"
        );
        for procs in [1usize, 2, 4, 8] {
            let full = {
                let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
                    .without_cache()
                    .with_procs(procs);
                let b = self.cold_query(&q).breakdown;
                b.io_s + b.compute_s
            };
            let io_only = {
                let q = ThresholdQuery {
                    mode: QueryMode::IoOnly,
                    ..ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
                        .without_cache()
                        .with_procs(procs)
                };
                let b = self.cold_query(&q).breakdown;
                b.io_s
            };
            println!(
                "{procs:>6} | {full:>10.3} | {io_only:>10.3} | {:>5.0}%",
                100.0 * io_only / full
            );
            self.results.push(Json::obj([
                ("experiment", Json::Str("fig8".into())),
                ("procs", Json::Num(procs as f64)),
                ("total_s", Json::Num(full)),
                ("io_only_s", Json::Num(io_only)),
            ]));
        }
        println!("paper: I/O ≈ half of total at p=1; total at p=4-8 ≈ I/O-only at p=1\n");
    }

    // --- Figure 9: per-field breakdowns --------------------------------------
    fn fig9(&mut self) {
        println!("---- Figure 9: execution-time breakdown by field and threshold ----");
        let fields: [(&str, DerivedField, &str); 3] = [
            ("velocity", DerivedField::CurlNorm, "vorticity"),
            ("velocity", DerivedField::QCriterion, "Q-criterion"),
            ("magnetic", DerivedField::Norm, "magnetic (raw)"),
        ];
        for (raw, derived, label) in fields {
            let tiers = self.tiers(raw, derived);
            println!("\n  [{label}] cold (cache miss) runs:");
            println!(
                "  {:>14} | {:>8} | {:>8} | {:>8} | {:>8} | {:>8} | {:>8}",
                "tier", "points", "cache", "io", "compute", "med-db", "med-user"
            );
            for (i, (_, tier_label, _)) in FRACTIONS.iter().enumerate() {
                let q = ThresholdQuery::whole_timestep(raw, derived, 0, tiers[i]);
                self.service
                    .cluster()
                    .invalidate_cache_entry(raw, derived, 0);
                let r = self.cold_query(&q);
                let b = r.breakdown;
                println!(
                    "  {tier_label:>14} | {:>8} | {:>8.4} | {:>8.3} | {:>8.3} | {:>8.4} | {:>8.4}",
                    r.points.len(),
                    b.cache_lookup_s,
                    b.io_s,
                    b.compute_s,
                    b.mediator_db_s,
                    b.mediator_user_s
                );
            }
            println!("  [{label}] warm (cache hit) runs:");
            for (i, (_, tier_label, _)) in FRACTIONS.iter().enumerate() {
                let q = ThresholdQuery::whole_timestep(raw, derived, 0, tiers[i]);
                let r = self.service.get_threshold(&q).expect("query");
                let b = r.breakdown;
                println!(
                    "  {tier_label:>14} | {:>8} | {:>8.4} | {:>8.3} | {:>8.3} | {:>8.4} | {:>8.4}",
                    r.points.len(),
                    b.cache_lookup_s,
                    b.io_s,
                    b.compute_s,
                    b.mediator_db_s,
                    b.mediator_user_s
                );
            }
        }
        println!("\npaper shapes: Q-criterion compute > vorticity compute; raw field ≈ no compute and less I/O (no halo);");
        println!("hits dominated by result transfer; cache lookup negligible in all cases\n");
    }

    // --- §5.2: hit ratio of a structured exploration workload -----------------
    fn hitratio(&mut self) {
        println!("---- §5.2: cache-hit ratio of a structured workload ----");
        // "queries tend to examine the same regions in space and time":
        // a scientist sweeps thresholds downward-then-upward over a few
        // time-steps and fields, revisiting the interesting ones
        self.service.cluster().clear_caches();
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        let steps: Vec<u32> = (0..self.timesteps.min(2)).collect();
        let mut issued = 0u32;
        for &t in &steps {
            for k in [tiers[2], tiers[1], tiers[0], tiers[1], tiers[2], tiers[0]] {
                let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, t, k);
                self.service.get_threshold(&q).expect("query");
                issued += 1;
            }
            // revisit the most interesting step with the PDF first
            let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, t, 0.0);
            self.service.get_pdf(&q, 0.0, 10.0, 9).expect("pdf");
            self.service.get_pdf(&q, 0.0, 10.0, 9).expect("pdf");
            issued += 2;
        }
        let stats = self.service.cluster().cache_stats();
        let ratio = stats.hit_ratio().unwrap_or(0.0);
        println!(
            "{issued} queries issued → {} hits / {} misses per node-subquery (ratio {:.0}%)",
            stats.hits,
            stats.misses,
            ratio * 100.0
        );
        println!("paper: \"fairly high cache-hit ratios as the workload is very structured\"\n");
        self.results.push(Json::obj([
            ("experiment", Json::Str("hitratio".into())),
            ("queries", Json::Num(f64::from(issued))),
            ("hits", Json::Num(stats.hits as f64)),
            ("misses", Json::Num(stats.misses as f64)),
            ("ratio", Json::Num(ratio)),
        ]));
    }

    /// Shared-scan amplification: N clients issuing the same cold query,
    /// evaluated independently (one scan each) vs as one coalesced batch
    /// (one shared scan). Reports the atoms-decoded delta.
    fn concurrent(&mut self) {
        println!("---- concurrent clients: shared scan vs independent scans ----");
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, tiers[1])
            .without_cache();
        let atoms = || tdb_obs::global().snapshot().counter("node.atoms_scanned");
        for clients in [1usize, 4, 16] {
            self.service.cluster().clear_buffer_pools();
            let before = atoms();
            for _ in 0..clients {
                self.service.get_threshold(&q).expect("query");
            }
            let independent = atoms() - before;
            self.service.cluster().clear_buffer_pools();
            let before = atoms();
            let qs = vec![q.clone(); clients];
            for r in self.service.get_threshold_batch(&qs) {
                r.expect("batched query");
            }
            let shared = atoms() - before;
            let saved = independent as f64 / shared.max(1) as f64;
            println!(
                "{clients:>2} clients: atoms decoded independent={independent} shared={shared} ({saved:.1}x saved)"
            );
            self.concurrency.push(Json::obj([
                ("clients", Json::Num(clients as f64)),
                ("atoms_decoded_independent", Json::Num(independent as f64)),
                ("atoms_decoded_shared", Json::Num(shared as f64)),
                ("atoms_saved", Json::Num((independent - shared) as f64)),
                ("amplification", Json::Num(saved)),
            ]));
        }
        println!("(one decode serves every concurrently admitted query over the span)\n");
    }

    /// Byte/accuracy sweep of the compressed atom tier: the same dataset
    /// is bulk-loaded under each codec mode, then a cold whole-timestep
    /// threshold scan measures how many modelled device bytes the arrays
    /// actually move, and the returned points are compared against the
    /// uncompressed answer.
    fn compression(&mut self) {
        println!("---- compression: compressed atom tier, byte / accuracy sweep ----");
        let n = self.grid_n.min(64);
        // lossy bounds are absolute; the synthetic velocity field has an
        // RMS of ~1.4, so the sweep spans ~0.07% to ~3.5% of RMS
        let modes: [(&str, CompressionConfig); 5] = [
            ("off", CompressionConfig::default()),
            ("lossless", CompressionConfig::lossless()),
            ("lossy-1e-3", CompressionConfig::lossy(2, 1e-3)),
            ("lossy-1e-2", CompressionConfig::lossy(2, 1e-2)),
            ("lossy-5e-2", CompressionConfig::lossy(2, 5e-2)),
        ];
        let counter = |name: &str| tdb_obs::global().snapshot().counter(name);
        let mut thresh: Option<f64> = None;
        let mut baseline: Option<std::collections::BTreeMap<(u32, u32, u32), f32>> = None;
        let mut off_scan_bytes = 0u64;
        println!(
            "{:>12} | {:>9} | {:>14} | {:>8} | {:>7} | {:>12}",
            "mode", "stored", "cold scan (B)", "vs off", "points", "max |Δvalue|"
        );
        for (label, codec) in modes {
            let logical0 = counter("compress.bytes.logical");
            let stored0 = counter("compress.bytes.stored");
            let svc = build_service_with(n, 1, 2, &format!("repro_comp_{label}"), |c| {
                c.compression = codec;
            });
            let logical = counter("compress.bytes.logical") - logical0;
            let stored = counter("compress.bytes.stored") - stored0;
            let k = *thresh.get_or_insert_with(|| {
                svc.threshold_for_fraction("velocity", DerivedField::CurlNorm, 0, FRACTIONS[2].0)
                    .expect("threshold")
            });
            let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
                .without_cache();
            svc.cluster().clear_buffer_pools();
            let bytes0 = counter("io.bytes.hdd-raid5");
            let r = svc.get_threshold(&q).expect("query");
            let scan_bytes = counter("io.bytes.hdd-raid5") - bytes0;
            let stored_ratio = if stored > 0 {
                logical as f64 / stored as f64
            } else {
                1.0
            };
            let vs_off = if off_scan_bytes > 0 {
                off_scan_bytes as f64 / scan_bytes.max(1) as f64
            } else {
                off_scan_bytes = scan_bytes;
                1.0
            };
            let max_dv = match &baseline {
                None => {
                    baseline = Some(r.points.iter().map(|p| (p.coords(), p.value)).collect());
                    0.0
                }
                Some(base) => r
                    .points
                    .iter()
                    .filter_map(|p| {
                        base.get(&p.coords())
                            .map(|&v| (f64::from(p.value) - f64::from(v)).abs())
                    })
                    .fold(0.0, f64::max),
            };
            println!(
                "{label:>12} | {stored_ratio:>8.2}x | {scan_bytes:>14} | {vs_off:>7.2}x | {:>7} | {max_dv:>12.2e}",
                r.points.len()
            );
            let row = Json::obj([
                ("mode", Json::Str(label.to_string())),
                ("bytes_logical", Json::Num(logical as f64)),
                ("bytes_stored", Json::Num(stored as f64)),
                ("stored_ratio", Json::Num(stored_ratio)),
                ("cold_scan_array_bytes", Json::Num(scan_bytes as f64)),
                ("array_bytes_vs_off", Json::Num(vs_off)),
                ("points", Json::Num(r.points.len() as f64)),
                ("max_value_delta", Json::Num(max_dv)),
                (
                    "max_error_micro",
                    Json::Num(
                        tdb_obs::global()
                            .snapshot()
                            .gauge("compress.max_error_micro") as f64,
                    ),
                ),
            ]);
            self.compression.push(row.clone());
            self.results.push(Json::obj([
                ("experiment", Json::Str("compression".into())),
                ("row", row),
            ]));
        }
        println!(
            "(a cold threshold scan over the lossy tier should move ≥4x fewer array bytes\n\
             \x20than the uncompressed tier; stored samples reconstruct within the\n\
             \x20configured bound, and derived values — CurlNorm differentiates the\n\
             \x20samples — inherit a finite-difference-amplified but still proportional\n\
             \x20error, the max |Δvalue| column — see DESIGN.md §10)\n"
        );
    }

    /// Availability and modelled tail latency of cold threshold scans
    /// against a 4-node cluster with one node killed, as the replication
    /// factor grows. At k=1 every whole-box query loses the dead node's
    /// boxes; at k≥2 read failover completes every answer, paying a
    /// failover round on the latency tail.
    fn replication(&mut self) {
        println!("---- replication: availability / tail latency vs k, one node down ----");
        let n = self.grid_n.min(64);
        let mut thresh: Option<f64> = None;
        println!(
            "{:>3} | {:>12} | {:>9} | {:>9} | {:>9}",
            "k", "availability", "p50 (s)", "p95 (s)", "max (s)"
        );
        for k in [1usize, 2, 3] {
            let plan = FaultPlan::new(0x7411).shared();
            let faults = std::sync::Arc::clone(&plan);
            let svc = build_service_with(n, 1, 4, &format!("repro_repl_{k}"), |c| {
                c.replication = tdb_cluster::ReplicationConfig::k(k);
                c.faults = Some(faults);
            });
            let thr = *thresh.get_or_insert_with(|| {
                svc.threshold_for_fraction("velocity", DerivedField::CurlNorm, 0, FRACTIONS[1].0)
                    .expect("threshold")
            });
            plan.set_node_down(2, true);
            let total = 12usize;
            let mut complete = 0usize;
            let mut lat = Vec::with_capacity(total);
            for _ in 0..total {
                let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, thr)
                    .without_cache();
                svc.cluster().clear_buffer_pools();
                let r = svc.get_threshold(&q).expect("query under a dead node");
                if r.degraded.is_none() {
                    complete += 1;
                }
                lat.push(r.breakdown.total_s());
            }
            lat.sort_by(f64::total_cmp);
            let availability = complete as f64 / total as f64;
            let p50 = lat[total / 2];
            let p95 = lat[(total * 95) / 100];
            let max = lat[total - 1];
            println!(
                "{k:>3} | {:>11.0}% | {p50:>9.3} | {p95:>9.3} | {max:>9.3}",
                availability * 100.0
            );
            let row = Json::obj([
                ("k", Json::Num(k as f64)),
                ("availability", Json::Num(availability)),
                ("queries", Json::Num(total as f64)),
                ("p50_s", Json::Num(p50)),
                ("p95_s", Json::Num(p95)),
                ("max_s", Json::Num(max)),
            ]);
            self.replication.push(row.clone());
            self.results.push(Json::obj([
                ("experiment", Json::Str("replication".into())),
                ("row", row),
            ]));
        }
        println!(
            "(k=1 answers lose the dead node's boxes — availability 0% for whole-box\n\
             \x20queries; k>=2 completes everything via read failover, and the extra\n\
             \x20failover round shows up in the latency tail)\n"
        );
    }

    // --- §5.3: local evaluation baseline --------------------------------------
    fn local(&mut self) {
        println!("---- §5.3: integrated evaluation vs local (client-side) evaluation ----");
        let tiers = self.tiers("velocity", DerivedField::CurlNorm);
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, tiers[1])
            .without_cache();
        let integrated = self.cold_query(&q);
        let full = self.service.full_box();
        let report = local_evaluation_estimate(
            self.service.cluster(),
            "velocity",
            DerivedField::CurlNorm,
            0,
            &full,
            64,
            &DeviceProfile::user_wan(),
        )
        .expect("baseline estimate");
        let integrated_total = integrated.breakdown.total_s();
        println!("integrated (server-side): {integrated_total:.2}s modelled");
        println!(
            "local evaluation: {} subqueries, {:.1} GB download ({} gradient components, XML-wrapped)",
            report.num_subqueries,
            report.download_bytes as f64 / 1e9,
            report.ncomp_shipped
        );
        println!(
            "local evaluation total: {:.1}s modelled = {:.0}x slower (paper: 20+ hours vs ~2 minutes, ≈600x)",
            report.total_s,
            report.total_s / integrated_total
        );
        println!();
    }
}

fn avg(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| f()).sum::<f64>() / n as f64
}
