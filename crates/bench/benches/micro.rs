//! Microbenchmarks of the hot primitives: Morton coding, finite
//! differences, block encode/decode + checksum, threshold scan, and
//! friends-of-friends clustering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tdb_analysis::fof::fof_clusters_3d;
use tdb_cache::ThresholdPoint;
use tdb_field::{Grid3, PaddedVector, ScalarField, VectorField};
use tdb_kernels::{DerivedField, DiffScheme, FdOrder};
use tdb_storage::MvccStore;
use tdb_storage::{AtomKey, AtomRecord};
use tdb_wire::{Json, Request, Response};
use tdb_zorder::{decode3, encode3, ATOM_POINTS};

fn morton(c: &mut Criterion) {
    let mut g = c.benchmark_group("morton");
    g.throughput(Throughput::Elements(1 << 16));
    g.bench_function("encode3_64k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..(1u32 << 16) {
                acc ^= encode3(i & 1023, (i >> 2) & 1023, (i >> 4) & 1023);
            }
            acc
        })
    });
    g.bench_function("decode3_64k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..(1u64 << 16) {
                let (x, y, z) = decode3(i * 0x9e37);
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            acc
        })
    });
    g.finish();
}

fn kernels(c: &mut Criterion) {
    let n = 64;
    let grid = Grid3::periodic_cube(n, std::f64::consts::TAU);
    let h = std::f64::consts::TAU / n as f64;
    let mk = |p: f64| {
        ScalarField::from_fn(n, n, n, move |x, y, z| {
            ((h * x as f64 + p).sin() * (h * y as f64).cos() + (h * z as f64 * 2.0).sin()) as f32
        })
    };
    let v = VectorField::from_components([mk(0.0), mk(1.0), mk(2.0)]);
    let mut g = c.benchmark_group("kernels_64cubed");
    g.throughput(Throughput::Elements((n * n * n) as u64));
    for order in FdOrder::all() {
        let scheme = DiffScheme::new(&grid, order);
        let mut padded = PaddedVector::zeros(n, n, n, scheme.halo());
        padded.fill_periodic_from(&v, [0, 0, 0]);
        g.bench_with_input(
            BenchmarkId::new("curl_norm", order.order()),
            &padded,
            |b, p| b.iter(|| DerivedField::CurlNorm.eval(p, &scheme, [0, 0, 0])),
        );
    }
    let scheme = DiffScheme::new(&grid, FdOrder::O4);
    let mut padded = PaddedVector::zeros(n, n, n, scheme.halo());
    padded.fill_periodic_from(&v, [0, 0, 0]);
    g.bench_function("q_criterion_o4", |b| {
        b.iter(|| DerivedField::QCriterion.eval(&padded, &scheme, [0, 0, 0]))
    });
    g.finish();
}

fn storage_blocks(c: &mut Criterion) {
    let records: Vec<AtomRecord> = (0..10)
        .map(|i| {
            AtomRecord::new(
                AtomKey::new(0, i * 8),
                3,
                (0..3 * ATOM_POINTS).map(|k| k as f32).collect(),
            )
            .unwrap()
        })
        .collect();
    let encoded = tdb_storage::block::encode_block(&records);
    let mut g = c.benchmark_group("storage_block");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_10_atoms", |b| {
        b.iter(|| tdb_storage::block::encode_block(&records))
    });
    g.bench_function("decode_10_atoms", |b| {
        b.iter(|| tdb_storage::block::decode_block(encoded.clone(), "bench").unwrap())
    });
    g.bench_function("crc32_64k", |b| b.iter(|| tdb_storage::checksum(&encoded)));
    g.finish();
}

fn fof(c: &mut Criterion) {
    // clustered point cloud: a few dense blobs plus background
    let mut points = Vec::new();
    let mut state = 0x12345u64;
    let mut rnd = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for blob in 0..20 {
        let cx = rnd() % 240;
        let cy = rnd() % 240;
        let cz = rnd() % 240;
        for _ in 0..200 {
            points.push(ThresholdPoint::at(
                (cx + rnd() % 8) % 256,
                (cy + rnd() % 8) % 256,
                (cz + rnd() % 8) % 256,
                blob as f32,
            ));
        }
    }
    let mut g = c.benchmark_group("fof");
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("4000_points_20_blobs", |b| {
        b.iter(|| fof_clusters_3d(&points, (256, 256, 256), 2))
    });
    g.finish();
}

fn wire_json(c: &mut Criterion) {
    let resp = Response::Threshold {
        points: (0..1000)
            .map(|i| ThresholdPoint::at(i % 64, (i / 64) % 64, i % 13, 42.5 + i as f32))
            .collect(),
        breakdown: Default::default(),
        cache_hits: 4,
        nodes: 4,
        degraded: None,
    };
    let encoded = resp.to_json().encode();
    let mut g = c.benchmark_group("wire_json");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_1000_points", |b| b.iter(|| resp.to_json().encode()));
    g.bench_function("parse_1000_points", |b| {
        b.iter(|| Response::from_json(&Json::parse(&encoded).unwrap()).unwrap())
    });
    let req = Request::GetThreshold {
        raw_field: "velocity".into(),
        derived: tdb_kernels::DerivedField::CurlNorm,
        timestep: 3,
        query_box: None,
        threshold: 44.0,
        use_cache: true,
    };
    g.bench_function("request_roundtrip", |b| {
        b.iter(|| Request::from_json(&Json::parse(&req.to_json().encode()).unwrap()).unwrap())
    });
    g.finish();
}

fn mvcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc");
    g.bench_function("commit_100_rows", |b| {
        let store: MvccStore<u64, u64> = MvccStore::new();
        let mut next = 0u64;
        b.iter(|| {
            let mut t = store.begin();
            for i in 0..100 {
                t.put(next + i, i);
            }
            next += 100;
            t.commit().unwrap()
        })
    });
    let store: MvccStore<u64, u64> = MvccStore::new();
    let mut seed = store.begin();
    for i in 0..10_000u64 {
        seed.put(i, i * 2);
    }
    seed.commit().unwrap();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("range_scan_1000_of_10000", |b| {
        b.iter(|| store.begin().range(4000..5000).len())
    });
    g.bench_function("point_get", |b| {
        let txn = store.begin();
        b.iter(|| txn.get(&7777))
    });
    g.finish();
}

fn threshold_scan(c: &mut Criterion) {
    use tdb_kernels::scan::{threshold_scan_clip, threshold_scan_clip_scalar, ScanHit};
    use tdb_zorder::Box3;
    let n = 64;
    let grid = Grid3::periodic_cube(n, std::f64::consts::TAU);
    let h = std::f64::consts::TAU / n as f64;
    let mk = |p: f64| {
        ScalarField::from_fn(n, n, n, move |x, y, z| {
            ((h * x as f64 + p).sin() * (h * y as f64).cos() + (h * z as f64 * 2.0).sin()) as f32
        })
    };
    let v = VectorField::from_components([mk(0.0), mk(1.0), mk(2.0)]);
    let scheme = DiffScheme::new(&grid, FdOrder::O4);
    let mut padded = PaddedVector::zeros(n, n, n, scheme.halo());
    padded.fill_periodic_from(&v, [0, 0, 0]);
    let norm = DerivedField::CurlNorm.eval(&padded, &scheme, [0, 0, 0]);
    let domain = Box3::new([0, 0, 0], [n as u32 - 1, n as u32 - 1, n as u32 - 1]);
    // high threshold: the compare-bound regime the chunked scan targets
    let thr = 6.0;
    let mut g = c.benchmark_group("threshold_scan_64cubed");
    g.throughput(Throughput::Elements((n * n * n) as u64));
    let mut out: Vec<ScanHit> = Vec::new();
    g.bench_function("scalar", |b| {
        b.iter(|| {
            out.clear();
            threshold_scan_clip_scalar(&norm, &domain, &domain, thr, &mut out);
            out.len()
        })
    });
    g.bench_function("chunked", |b| {
        b.iter(|| {
            out.clear();
            threshold_scan_clip(&norm, &domain, &domain, thr, &mut out);
            out.len()
        })
    });
    g.finish();
}

fn buffer_pool(c: &mut Criterion) {
    use tdb_storage::bufferpool::{BlockKey, BufferPool};
    let pool: BufferPool = BufferPool::new(64 << 20);
    let mut session = tdb_storage::IoSession::new();
    for i in 0..1024u32 {
        pool.get_or_load(
            BlockKey {
                file_id: 0,
                block_no: i,
            },
            &mut session,
            |_| Ok(bytes::Bytes::from(vec![0u8; 4096])),
        )
        .unwrap();
    }
    let mut g = c.benchmark_group("buffer_pool");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("hit_1024_blocks", |b| {
        b.iter(|| {
            let mut s = tdb_storage::IoSession::new();
            for i in 0..1024u32 {
                pool.get_or_load(
                    BlockKey {
                        file_id: 0,
                        block_no: i,
                    },
                    &mut s,
                    |_| unreachable!("must hit"),
                )
                .unwrap();
            }
            s.pool_hits
        })
    });
    g.finish();
}

/// Zipf-trace replay against each eviction policy: same access stream,
/// pool sized to a quarter of the key universe, so the hit rate measures
/// the policy itself (see `cargo bench --bench hotpath` for absolute
/// hit-rate numbers written to the BENCH_<date>.json trend file).
fn buffer_pool_policies(c: &mut Criterion) {
    use tdb_storage::bufferpool::{BlockKey, BufferPool};
    use tdb_storage::EvictionPolicyKind;
    const BLOCK: usize = 4096;
    let universe = 1024usize;
    // precompute the zipf(s≈1) trace once: inverse-CDF over an xorshift
    let trace: Vec<u32> = {
        let mut cdf = Vec::with_capacity(universe);
        let mut total = 0.0;
        for i in 0..universe {
            total += 1.0 / ((i + 1) as f64).powf(0.99);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        let mut state = 0x7db2026u64;
        (0..16_384)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                cdf.partition_point(|&cc| cc < u) as u32
            })
            .collect()
    };
    let mut g = c.benchmark_group("buffer_pool_zipf");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for kind in EvictionPolicyKind::all() {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let pool: BufferPool = BufferPool::with_policy(universe / 4 * BLOCK, kind, None);
                let mut s = tdb_storage::IoSession::new();
                for &block_no in &trace {
                    pool.get_or_load(
                        BlockKey {
                            file_id: 0,
                            block_no,
                        },
                        &mut s,
                        |_| Ok(bytes::Bytes::from(vec![0u8; BLOCK])),
                    )
                    .unwrap();
                }
                s.pool_hits
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    morton,
    kernels,
    storage_blocks,
    fof,
    wire_json,
    mvcc,
    threshold_scan,
    buffer_pool,
    buffer_pool_policies
);
criterion_main!(benches);
