//! Ablations of the design choices DESIGN.md calls out: buffer-pool size,
//! finite-difference order (halo traffic), chunk granularity, and the
//! z-order range decomposition that drives partition pruning.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::scratch_dir;
use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, FdOrder, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;
use tdb_zorder::{decompose_box, Box3};

fn build(chunk_atoms: u32, fd_order: FdOrder, tag: &str) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(64, 1, 0xab1a),
        cluster: ClusterConfig {
            num_nodes: 4,
            procs_per_node: 4,
            arrays_per_node: 4,
            chunk_atoms,
            fd_order,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

/// Halo traffic and kernel cost versus finite-difference order.
fn fd_order_ablation(c: &mut Criterion) {
    static SERVICES: OnceLock<Vec<(FdOrder, TurbulenceService)>> = OnceLock::new();
    let services = SERVICES.get_or_init(|| {
        FdOrder::all()
            .into_iter()
            .map(|o| (o, build(2, o, &format!("abl_fd{}", o.order()))))
            .collect()
    });
    let mut g = c.benchmark_group("ablation_fd_order");
    g.sample_size(10);
    for (order, s) in services {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 40.0)
            .without_cache();
        g.bench_with_input(BenchmarkId::from_parameter(order.order()), &q, |b, q| {
            b.iter(|| s.get_threshold(q).unwrap())
        });
    }
    g.finish();
}

/// Chunk granularity: many small chunks (more halo redundancy, better
/// balance) versus few large ones.
fn chunk_size_ablation(c: &mut Criterion) {
    static SERVICES: OnceLock<Vec<(u32, TurbulenceService)>> = OnceLock::new();
    let services = SERVICES.get_or_init(|| {
        [1u32, 2, 4]
            .into_iter()
            .map(|ca| (ca, build(ca, FdOrder::O4, &format!("abl_chunk{ca}"))))
            .collect()
    });
    let mut g = c.benchmark_group("ablation_chunk_size");
    g.sample_size(10);
    for (ca, s) in services {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 40.0)
            .without_cache();
        g.bench_with_input(BenchmarkId::from_parameter(ca), &q, |b, q| {
            b.iter(|| s.get_threshold(q).unwrap())
        });
    }
    g.finish();
}

/// Cache on/off on a repeated-query workload (the headline ablation).
fn cache_ablation(c: &mut Criterion) {
    static SERVICE: OnceLock<TurbulenceService> = OnceLock::new();
    let s = SERVICE.get_or_init(|| build(2, FdOrder::O4, "abl_cache"));
    let mut g = c.benchmark_group("ablation_cache");
    g.sample_size(10);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 40.0);
    g.bench_function("cache_off", |b| {
        let q = q.clone().without_cache();
        b.iter(|| s.get_threshold(&q).unwrap())
    });
    s.get_threshold(&q).unwrap(); // warm
    g.bench_function("cache_on_warm", |b| b.iter(|| s.get_threshold(&q).unwrap()));
    g.finish();
}

/// Exact z-order decomposition vs a single covering range: how much scan
/// work partition pruning saves on a boxed query.
fn zrange_pruning_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_zrange_decomposition");
    let boxes = [
        ("thin_slab", Box3::new([0, 0, 12], [63, 63, 19])),
        ("octant", Box3::new([0, 0, 0], [31, 31, 31])),
        ("column", Box3::new([24, 24, 0], [39, 39, 63])),
    ];
    for (label, b3) in boxes {
        let atom_box = b3.atom_box();
        g.bench_with_input(BenchmarkId::new("decompose", label), &atom_box, |b, ab| {
            b.iter(|| decompose_box(ab, 6))
        });
        // report covered-vs-exact factor once per box
        let ranges = decompose_box(&atom_box, 6);
        let exact: u64 = ranges.iter().map(|r| r.len()).sum();
        let cover = ranges.last().unwrap().end - ranges[0].start + 1;
        eprintln!(
            "zrange pruning [{label}]: {} ranges, exact {exact} atoms vs {cover} in one covering range ({:.1}x saved)",
            ranges.len(),
            cover as f64 / exact as f64
        );
    }
    g.finish();
}

/// Top-k strategies: unbounded full scan vs PDF-guided threshold pruning
/// (the PDF itself is served from the extended cache once warm).
fn topk_strategy_ablation(c: &mut Criterion) {
    static SERVICE: OnceLock<TurbulenceService> = OnceLock::new();
    let s = SERVICE.get_or_init(|| build(2, FdOrder::O4, "abl_topk"));
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    let mut g = c.benchmark_group("ablation_topk_strategy");
    g.sample_size(10);
    g.bench_function("full_scan", |b| b.iter(|| s.get_topk(&q, 50).unwrap()));
    s.get_topk_guided(&q, 50).unwrap(); // warm the PDF + threshold caches
    g.bench_function("pdf_guided_warm", |b| {
        b.iter(|| s.get_topk_guided(&q, 50).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    fd_order_ablation,
    chunk_size_ablation,
    cache_ablation,
    zrange_pruning_ablation,
    topk_strategy_ablation
);
criterion_main!(benches);
