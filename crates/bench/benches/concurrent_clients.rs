//! Concurrent-clients microbenchmark: 1 / 4 / 16 simulated clients
//! issuing the same cold threshold query, evaluated independently (one
//! scan per client) versus as one coalesced batch (one shared scan).
//! The wall-clock numbers land in Criterion's report; the atoms-decoded
//! delta is what the repro harness records in `repro_metrics.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::test_service;
use tdb_core::{DerivedField, ThresholdQuery, TurbulenceService};

fn query() -> ThresholdQuery {
    ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0).without_cache()
}

fn atoms_scanned() -> u64 {
    tdb_obs::global().snapshot().counter("node.atoms_scanned")
}

fn run_independent(service: &TurbulenceService, clients: usize) -> usize {
    let q = query();
    service.cluster().clear_buffer_pools();
    (0..clients)
        .map(|_| service.get_threshold(&q).unwrap().points.len())
        .sum()
}

fn run_shared(service: &TurbulenceService, clients: usize) -> usize {
    let qs = vec![query(); clients];
    service.cluster().clear_buffer_pools();
    service
        .get_threshold_batch(&qs)
        .into_iter()
        .map(|r| r.unwrap().points.len())
        .sum()
}

fn concurrent_clients(c: &mut Criterion) {
    let service = test_service("bench_conc", 64, 1, 4);
    let mut g = c.benchmark_group("concurrent_clients");
    g.sample_size(10);
    for clients in [1usize, 4, 16] {
        // report the decode amplification once per client count
        let before = atoms_scanned();
        run_independent(&service, clients);
        let independent = atoms_scanned() - before;
        let before = atoms_scanned();
        run_shared(&service, clients);
        let shared = atoms_scanned() - before;
        eprintln!(
            "clients={clients}: atoms decoded independent={independent} shared={shared} ({:.1}x saved)",
            independent as f64 / shared.max(1) as f64
        );
        g.bench_with_input(
            BenchmarkId::new("independent", clients),
            &clients,
            |b, &n| b.iter(|| run_independent(&service, n)),
        );
        g.bench_with_input(BenchmarkId::new("shared", clients), &clients, |b, &n| {
            b.iter(|| run_shared(&service, n))
        });
    }
    g.finish();
}

criterion_group!(benches, concurrent_clients);
criterion_main!(benches);
