//! Hot-path before/after benchmarks with a machine-readable trend file.
//!
//! Measures the chunked (autovectorization-friendly) kernels against their
//! per-point reference implementations — threshold scan, finite-difference
//! derivative, batched Morton decode — plus interpolation throughput and
//! the buffer-pool hit rate of every eviction policy under a zipf trace.
//! Results are printed as a table and merged into today's
//! `BENCH_<date>.json` under the `hotpath` key (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo bench -p tdb-bench --bench hotpath            # full sizes
//! TDB_BENCH_SMOKE=1 cargo bench -p tdb-bench --bench hotpath   # CI smoke
//! ```

use std::hint::black_box;
use std::time::Instant;

use tdb_field::{Grid3, PaddedVector, ScalarField, VectorField};
use tdb_kernels::scan::{threshold_scan_clip, threshold_scan_clip_scalar, ScanHit};
use tdb_kernels::{DerivedField, DiffScheme, FdOrder};
use tdb_storage::bufferpool::{BlockKey, BufferPool};
use tdb_storage::EvictionPolicyKind;
use tdb_wire::Json;
use tdb_zorder::{decode3, Box3, MortonBlockDecoder};

/// Mean seconds per call over `reps` calls after one warm-up call.
fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// Synthetic turbulence-like velocity field on an `n`-cube.
fn velocity(n: usize) -> (Grid3, VectorField<3>) {
    let grid = Grid3::periodic_cube(n, std::f64::consts::TAU);
    let h = std::f64::consts::TAU / n as f64;
    let mk = |p: f64| {
        ScalarField::from_fn(n, n, n, move |x, y, z| {
            ((h * x as f64 + p).sin() * (h * y as f64).cos() + (h * z as f64 * 2.0).sin()) as f32
        })
    };
    (
        grid,
        VectorField::from_components([mk(0.0), mk(1.0), mk(2.0)]),
    )
}

/// Threshold picked so roughly `frac` of the norm field matches.
fn threshold_at(norm: &ScalarField, frac: f64) -> f64 {
    let (nx, ny, nz) = norm.dims();
    let mut vals: Vec<f32> = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            vals.extend_from_slice(norm.row(y, z));
        }
    }
    vals.sort_unstable_by(f32::total_cmp);
    let idx = ((vals.len() as f64) * (1.0 - frac)) as usize;
    f64::from(vals[idx.min(vals.len() - 1)])
}

struct ScanNumbers {
    scalar_mpts: f64,
    chunked_mpts: f64,
    speedup: f64,
}

fn bench_scan(norm: &ScalarField, reps: usize) -> ScanNumbers {
    let (nx, ny, nz) = norm.dims();
    let npoints = (nx * ny * nz) as f64;
    let domain = Box3::new([0, 0, 0], [nx as u32 - 1, ny as u32 - 1, nz as u32 - 1]);
    // the paper's "low" tier: ~1e-3 of the grid matches, so the scan is
    // compare-bound, not output-bound
    let thr = threshold_at(norm, 1e-3);
    let mut out: Vec<ScanHit> = Vec::new();
    let t_scalar = time(reps, || {
        out.clear();
        threshold_scan_clip_scalar(black_box(norm), &domain, &domain, black_box(thr), &mut out);
        black_box(out.len());
    });
    let t_chunked = time(reps, || {
        out.clear();
        threshold_scan_clip(black_box(norm), &domain, &domain, black_box(thr), &mut out);
        black_box(out.len());
    });
    ScanNumbers {
        scalar_mpts: npoints / t_scalar / 1e6,
        chunked_mpts: npoints / t_chunked / 1e6,
        speedup: t_scalar / t_chunked,
    }
}

fn bench_morton(ncodes: u64, reps: usize) -> (f64, f64) {
    // consecutive codes within shared atoms: the decoder's common case
    let codes: Vec<u64> = (0..ncodes).collect();
    let t_plain = time(reps, || {
        let mut acc = 0u32;
        for &c in &codes {
            let (x, y, z) = decode3(black_box(c));
            acc = acc.wrapping_add(x ^ y ^ z);
        }
        black_box(acc);
    });
    let t_batched = time(reps, || {
        let mut dec = MortonBlockDecoder::default();
        let mut acc = 0u32;
        for &c in &codes {
            let (x, y, z) = dec.decode(black_box(c));
            acc = acc.wrapping_add(x ^ y ^ z);
        }
        black_box(acc);
    });
    let n = ncodes as f64;
    (n / t_plain / 1e6, n / t_batched / 1e6)
}

struct DerivNumbers {
    reference_mpts: f64,
    chunked_mpts: f64,
    eval_mpts: f64,
}

fn bench_deriv(grid: &Grid3, v: &VectorField<3>, reps: usize) -> DerivNumbers {
    let (nx, ny, nz) = grid.dims();
    let npoints = (nx * ny * nz) as f64;
    let scheme = DiffScheme::new(grid, FdOrder::O4);
    let mut padded = PaddedVector::zeros(nx, ny, nz, scheme.halo());
    padded.fill_periodic_from(v, [0, 0, 0]);
    let comp = padded.comp(0);
    let t_ref = time(reps, || {
        black_box(scheme.deriv_padded_reference(black_box(comp), 0, [0, 0, 0]));
    });
    let t_chunked = time(reps, || {
        black_box(scheme.deriv_padded(black_box(comp), 0, [0, 0, 0]));
    });
    let t_eval = time(reps, || {
        black_box(DerivedField::CurlNorm.eval(black_box(&padded), &scheme, [0, 0, 0]));
    });
    DerivNumbers {
        reference_mpts: npoints / t_ref / 1e6,
        chunked_mpts: npoints / t_chunked / 1e6,
        eval_mpts: npoints / t_eval / 1e6,
    }
}

fn bench_interp(grid: &Grid3, v: &VectorField<3>, npos: usize, reps: usize) -> f64 {
    use tdb_kernels::interp::{interpolate, LagOrder};
    let (nx, ny, nz) = grid.dims();
    let order = LagOrder::Lag6;
    let scheme_halo = order.halo();
    let mut padded = PaddedVector::zeros(nx, ny, nz, scheme_halo);
    padded.fill_periodic_from(v, [0, 0, 0]);
    // deterministic jittered positions away from the chunk faces
    let positions: Vec<[f64; 3]> = (0..npos)
        .map(|i| {
            let r = |k: usize| {
                let s = (i * 31 + k * 17) % 1000;
                4.0 + (nx as f64 - 8.0) * (s as f64 / 1000.0)
            };
            [r(0), r(1), r(2)]
        })
        .collect();
    let t = time(reps, || {
        let mut acc = 0.0f32;
        for &p in &positions {
            let out = interpolate::<3>(black_box(&padded), order, p);
            acc += out[0];
        }
        black_box(acc);
    });
    npos as f64 / t / 1e6
}

/// Inverse-CDF zipf(s≈1) sampler over `universe` keys with an xorshift rng.
struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    fn new(universe: usize, seed: u64) -> Self {
        let mut cdf = Vec::with_capacity(universe);
        let mut total = 0.0;
        for i in 0..universe {
            total += 1.0 / ((i + 1) as f64).powf(0.99);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf, state: seed }
    }

    fn next(&mut self) -> u32 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

fn bench_pool_zipf(universe: usize, accesses: usize) -> Vec<(String, f64)> {
    const BLOCK: usize = 4096;
    // budget for a quarter of the universe: eviction pressure without thrash
    let budget = universe / 4 * BLOCK;
    let mut out = Vec::new();
    for kind in EvictionPolicyKind::all() {
        let pool: BufferPool = BufferPool::with_policy(budget, kind, None);
        let mut zipf = Zipf::new(universe, 0x7db2026);
        let mut session = tdb_storage::IoSession::new();
        for _ in 0..accesses {
            let key = BlockKey {
                file_id: 0,
                block_no: zipf.next(),
            };
            pool.get_or_load(key, &mut session, |_| {
                Ok(bytes::Bytes::from(vec![0u8; BLOCK]))
            })
            .expect("pool load");
        }
        let hits = session.pool_hits as f64;
        let total = (session.pool_hits + session.pool_misses) as f64;
        out.push((kind.name().to_string(), hits / total.max(1.0)));
    }
    out
}

fn main() {
    let smoke = std::env::var("TDB_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (n, reps, ncodes, npos, universe, accesses) = if smoke {
        (32, 2, 1u64 << 14, 1_000, 256, 20_000)
    } else {
        (128, 5, 1u64 << 20, 20_000, 4096, 400_000)
    };
    println!("== hotpath bench (grid {n}³, smoke={smoke}) ==\n");

    let (grid, v) = velocity(n);
    let scheme = DiffScheme::new(&grid, FdOrder::O4);
    let mut padded = PaddedVector::zeros(n, n, n, scheme.halo());
    padded.fill_periodic_from(&v, [0, 0, 0]);
    let norm = DerivedField::CurlNorm.eval(&padded, &scheme, [0, 0, 0]);

    let scan = bench_scan(&norm, reps);
    println!(
        "threshold scan   scalar {:8.1} Mpts/s   chunked {:8.1} Mpts/s   ({:.2}x)",
        scan.scalar_mpts, scan.chunked_mpts, scan.speedup
    );

    let (morton_plain, morton_batched) = bench_morton(ncodes, reps);
    println!(
        "morton decode    plain  {morton_plain:8.1} Mcodes/s  batched {morton_batched:8.1} Mcodes/s   ({:.2}x)",
        morton_batched / morton_plain
    );

    let deriv = bench_deriv(&grid, &v, reps);
    println!(
        "fd derivative    ref    {:8.1} Mpts/s   chunked {:8.1} Mpts/s   ({:.2}x)",
        deriv.reference_mpts,
        deriv.chunked_mpts,
        deriv.chunked_mpts / deriv.reference_mpts
    );
    println!("curl-norm eval          {:8.1} Mpts/s", deriv.eval_mpts);

    let interp_mpts = bench_interp(&grid, &v, npos, reps);
    println!("lagrange-6 interp       {interp_mpts:8.3} Mpts/s");

    let pool = bench_pool_zipf(universe, accesses);
    print!("pool zipf hit-rate     ");
    for (name, rate) in &pool {
        print!("  {name} {:.1}%", rate * 100.0);
    }
    println!("\n");

    let doc = Json::obj([
        ("smoke", Json::Bool(smoke)),
        ("grid_n", Json::Num(n as f64)),
        (
            "threshold_scan",
            Json::obj([
                ("scalar_mpts_s", Json::Num(scan.scalar_mpts)),
                ("chunked_mpts_s", Json::Num(scan.chunked_mpts)),
                ("speedup", Json::Num(scan.speedup)),
            ]),
        ),
        (
            "morton_decode",
            Json::obj([
                ("plain_mcodes_s", Json::Num(morton_plain)),
                ("batched_mcodes_s", Json::Num(morton_batched)),
                ("speedup", Json::Num(morton_batched / morton_plain)),
            ]),
        ),
        (
            "fd_derivative",
            Json::obj([
                ("reference_mpts_s", Json::Num(deriv.reference_mpts)),
                ("chunked_mpts_s", Json::Num(deriv.chunked_mpts)),
                ("curlnorm_eval_mpts_s", Json::Num(deriv.eval_mpts)),
            ]),
        ),
        ("interp_mpts_s", Json::Num(interp_mpts)),
        (
            "pool_zipf_hit_rate",
            Json::Obj(
                pool.iter()
                    .map(|(name, rate)| (name.clone(), Json::Num(*rate)))
                    .collect(),
            ),
        ),
    ]);
    match tdb_bench::merge_into_trend("hotpath", doc) {
        Ok(path) => println!("(results merged into {path})"),
        Err(e) => eprintln!("could not write trend file: {e}"),
    }
    // the acceptance gate: the chunked scan must be meaningfully faster
    // than the per-point reference (full sizes only; smoke is too noisy)
    if !smoke && scan.speedup < 1.5 {
        eprintln!(
            "WARNING: chunked threshold scan speedup {:.2}x is below the 1.5x target",
            scan.speedup
        );
    }
}
