//! Criterion benches mirroring the paper's experiments at bench scale
//! (64³ so a full `cargo bench` stays in minutes). One group per
//! table/figure; the `repro` binary prints the paper-style tables at
//! 128³+.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::scratch_dir;
use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, QueryMode, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

fn service() -> &'static TurbulenceService {
    static SERVICE: OnceLock<TurbulenceService> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let config = ServiceConfig {
            dataset: SyntheticDataset::mhd(64, 2, 0xbe7c),
            cluster: ClusterConfig {
                num_nodes: 4,
                procs_per_node: 4,
                arrays_per_node: 4,
                chunk_atoms: 2,
                compute_scale: 6.0,
                ..ClusterConfig::default()
            },
            limits: Default::default(),
            data_dir: scratch_dir("bench_paper"),
        };
        TurbulenceService::build(config).expect("build")
    })
}

fn tier_thresholds() -> &'static [f64; 3] {
    static TIERS: OnceLock<[f64; 3]> = OnceLock::new();
    TIERS.get_or_init(|| {
        let s = service();
        [3.95e-6, 8.06e-5, 8.47e-4].map(|f| {
            s.threshold_for_fraction("velocity", DerivedField::CurlNorm, 0, f)
                .expect("threshold")
        })
    })
}

/// Table 1 / Fig. 6: no-cache vs cache-miss vs cache-hit wall time.
fn cache_effectiveness(c: &mut Criterion) {
    let s = service();
    let tiers = tier_thresholds();
    let mut g = c.benchmark_group("table1_cache_effectiveness");
    g.sample_size(10);
    for (label, k) in [("high", tiers[0]), ("medium", tiers[1]), ("low", tiers[2])] {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k);
        g.bench_with_input(BenchmarkId::new("no_cache", label), &q, |b, q| {
            let q = q.clone().without_cache();
            b.iter(|| s.get_threshold(&q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("cache_miss", label), &q, |b, q| {
            b.iter(|| {
                s.cluster()
                    .invalidate_cache_entry("velocity", DerivedField::CurlNorm, 0);
                s.get_threshold(q).unwrap()
            })
        });
        // warm once, then hits
        s.get_threshold(&q).unwrap();
        g.bench_with_input(BenchmarkId::new("cache_hit", label), &q, |b, q| {
            b.iter(|| s.get_threshold(q).unwrap())
        });
    }
    g.finish();
}

/// Fig. 7(a): scale-up with processes per node (real wall time of the
/// in-process evaluation; the modelled curves come from `repro fig7a`).
fn scale_up(c: &mut Criterion) {
    let s = service();
    let k = tier_thresholds()[1];
    let mut g = c.benchmark_group("fig7a_scale_up");
    g.sample_size(10);
    for procs in [1usize, 2, 4, 8] {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
            .without_cache()
            .with_procs(procs);
        g.bench_with_input(BenchmarkId::from_parameter(procs), &q, |b, q| {
            b.iter(|| s.get_threshold(q).unwrap())
        });
    }
    g.finish();
}

/// Fig. 8: full evaluation vs I/O-only scan.
fn io_vs_total(c: &mut Criterion) {
    let s = service();
    let k = tier_thresholds()[1];
    let mut g = c.benchmark_group("fig8_io_vs_total");
    g.sample_size(10);
    for (label, mode) in [("total", QueryMode::Full), ("io_only", QueryMode::IoOnly)] {
        let q = ThresholdQuery {
            mode,
            ..ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k)
                .without_cache()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &q, |b, q| {
            b.iter(|| s.get_threshold(q).unwrap())
        });
    }
    g.finish();
}

/// Fig. 9: per-field evaluation cost (vorticity vs Q-criterion vs raw).
fn field_breakdown(c: &mut Criterion) {
    let s = service();
    let mut g = c.benchmark_group("fig9_field_breakdown");
    g.sample_size(10);
    for (raw, derived, label) in [
        ("velocity", DerivedField::CurlNorm, "vorticity"),
        ("velocity", DerivedField::QCriterion, "q_criterion"),
        ("magnetic", DerivedField::Norm, "magnetic_raw"),
    ] {
        let k = s
            .threshold_for_fraction(raw, derived, 0, 8.06e-5)
            .expect("threshold");
        let q = ThresholdQuery::whole_timestep(raw, derived, 0, k).without_cache();
        g.bench_with_input(BenchmarkId::from_parameter(label), &q, |b, q| {
            b.iter(|| s.get_threshold(q).unwrap())
        });
    }
    g.finish();
}

/// Fig. 2: PDF query over a full time-step.
fn pdf_query(c: &mut Criterion) {
    let s = service();
    let mut g = c.benchmark_group("fig2_pdf_query");
    g.sample_size(10);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    g.bench_function("vorticity_pdf", |b| {
        b.iter(|| s.get_pdf(&q, 0.0, 10.0, 9).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    cache_effectiveness,
    scale_up,
    io_vs_total,
    field_breakdown,
    pdf_query
);
criterion_main!(benches);
