//! The semantic cache end-to-end: hits must be answer-equivalent to cold
//! evaluation, misses must fall back correctly, and the paper's
//! warm-up / pollute / re-issue protocol (§5.2) must produce hits.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tdb_bench::{test_service, test_service_with};
use tdb_cluster::CoalesceConfig;
use tdb_core::{DerivedField, ThresholdPoint, ThresholdQuery};

#[test]
fn cache_hit_answers_are_identical_to_cold_answers() {
    let service = test_service("cache_ident", 32, 2, 3);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 3.0 * stats.rms);
    let cold = service.get_threshold(&q).unwrap();
    assert_eq!(cold.cache_hits, 0, "first query must miss");
    let warm = service.get_threshold(&q).unwrap();
    assert_eq!(warm.cache_hits, warm.nodes, "every node should hit");
    assert_eq!(cold.points.len(), warm.points.len());
    for (a, b) in cold.points.iter().zip(&warm.points) {
        assert_eq!(a.zindex, b.zindex);
        assert_eq!(a.value, b.value);
    }
}

#[test]
fn higher_threshold_is_served_from_cache_with_filtering() {
    let service = test_service("cache_filter", 32, 1, 2);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let low = 2.0 * stats.rms;
    let high = 3.5 * stats.rms;
    // warm at the low threshold
    let q_low = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, low);
    let cold_low = service.get_threshold(&q_low).unwrap();
    // higher threshold: must hit and equal a cold evaluation at `high`
    let q_high = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, high);
    let warm_high = service.get_threshold(&q_high).unwrap();
    assert_eq!(warm_high.cache_hits, warm_high.nodes);
    let expect: Vec<_> = cold_low
        .points
        .iter()
        .filter(|p| f64::from(p.value) >= high)
        .collect();
    assert_eq!(warm_high.points.len(), expect.len());
    assert!(warm_high.points.len() < cold_low.points.len());
}

#[test]
fn lower_threshold_misses_and_updates_the_cache() {
    let service = test_service("cache_update", 32, 1, 2);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let q_high =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 3.5 * stats.rms);
    service.get_threshold(&q_high).unwrap();
    // lower threshold cannot be answered from the cached (higher) one
    let q_low =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 2.5 * stats.rms);
    let r = service.get_threshold(&q_low).unwrap();
    assert_eq!(r.cache_hits, 0);
    // but the entry was replaced: re-issuing now hits
    let r2 = service.get_threshold(&q_low).unwrap();
    assert_eq!(r2.cache_hits, r2.nodes);
    assert_eq!(r.points.len(), r2.points.len());
}

#[test]
fn paper_protocol_warm_pollute_reissue() {
    // §5.2: warm the cache, pollute it with unrelated queries, re-issue
    // the originals and observe hits.
    let service = test_service("cache_pollute", 32, 4, 2);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let originals: Vec<ThresholdQuery> = [2.2, 2.8, 3.4]
        .iter()
        .map(|&k| {
            ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, k * stats.rms)
        })
        .collect();
    // issue from lowest threshold up so later ones hit the cached superset
    service.get_threshold(&originals[0]).unwrap();
    // pollute: different time-steps and fields
    for t in 1..4 {
        let q =
            ThresholdQuery::whole_timestep("magnetic", DerivedField::CurlNorm, t, 3.0 * stats.rms);
        service.get_threshold(&q).unwrap();
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::QCriterion, t, 1e9);
        service.get_threshold(&q).unwrap();
    }
    // re-issue all three: thresholds ≥ the cached one → hits
    for q in &originals {
        let r = service.get_threshold(q).unwrap();
        assert_eq!(r.cache_hits, r.nodes, "polluted cache must still hit");
    }
    let cs = service.cluster().cache_stats();
    assert!(cs.hit_ratio().unwrap() > 0.2);
}

#[test]
fn cache_hit_is_an_order_of_magnitude_faster_modelled() {
    // the paper's headline: hits cut modelled query time by >10x
    let service = test_service("cache_speed", 64, 1, 4);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 3.0 * stats.rms);
    let cold = service.get_threshold(&q).unwrap();
    let warm = service.get_threshold(&q).unwrap();
    // compare the server-side phases (cache lookup + I/O + compute): the
    // user-bound WAN round-trip is a constant shared by both paths and at
    // this small grid scale it would mask the effect the paper measures
    // on 1024³ (where totals themselves drop >10x).
    let server = |b: &tdb_core::TimeBreakdown| b.cache_lookup_s + b.io_s + b.compute_s;
    let cold_t = server(&cold.breakdown);
    let warm_t = server(&warm.breakdown);
    assert!(
        warm_t * 10.0 < cold_t,
        "expected >10x modelled server-side speedup: cold {cold_t}, warm {warm_t}"
    );
    // and the miss overhead of probing the cache first is small
    service
        .cluster()
        .invalidate_cache_entry("velocity", DerivedField::CurlNorm, 0);
    service.cluster().clear_buffer_pools();
    let miss = service.get_threshold(&q).unwrap();
    service
        .cluster()
        .invalidate_cache_entry("velocity", DerivedField::CurlNorm, 0);
    service.cluster().clear_buffer_pools();
    let no_cache = service.get_threshold(&q.clone().without_cache()).unwrap();
    let overhead = miss.breakdown.io_s / no_cache.breakdown.io_s;
    assert!(
        overhead < 1.15,
        "cache-miss I/O overhead should be small, got {overhead}"
    );
}

#[test]
fn io_only_mode_reads_without_computing() {
    let service = test_service("cache_ioonly", 32, 1, 2);
    let q = ThresholdQuery {
        mode: tdb_core::QueryMode::IoOnly,
        ..ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 10.0)
            .without_cache()
    };
    let r = service.get_threshold(&q).unwrap();
    assert!(r.points.is_empty(), "I/O-only runs return no points");
    assert!(r.breakdown.io_s > 0.0);
    assert!(r.breakdown.compute_s < 1e-4);
}

#[test]
fn pdf_queries_are_cached_too() {
    // the paper's §4 extensibility claim, implemented: repeated PDF
    // queries with identical region and binning answer from the cache
    let service = test_service("cache_pdf", 32, 1, 2);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    let cold = service.get_pdf(&q, 0.0, 10.0, 9).unwrap();
    assert!(cold.breakdown.io_s > 0.0, "cold PDF reads raw data");
    let warm = service.get_pdf(&q, 0.0, 10.0, 9).unwrap();
    assert_eq!(warm.histogram.counts(), cold.histogram.counts());
    assert_eq!(warm.breakdown.io_s, 0.0, "warm PDF skips raw data");
    // different binning: a fresh evaluation
    let rebinned = service.get_pdf(&q, 0.0, 5.0, 18).unwrap();
    assert!(rebinned.breakdown.io_s > 0.0, "re-binned PDF must re-scan");
    assert_eq!(rebinned.histogram.total(), cold.histogram.total());
    // sub-region: a fresh evaluation with its own entry
    let sub = q.clone().in_box(tdb_core::Box3::cube(16));
    let sub_cold = service.get_pdf(&sub, 0.0, 10.0, 9).unwrap();
    assert!(sub_cold.breakdown.io_s > 0.0);
    assert_eq!(sub_cold.histogram.total(), 16 * 16 * 16);
    let sub_warm = service.get_pdf(&sub, 0.0, 10.0, 9).unwrap();
    assert_eq!(sub_warm.breakdown.io_s, 0.0);
}

#[test]
fn mid_scan_queries_never_observe_partial_cache_entries() {
    // Snapshot isolation under the shared-scan scheduler: a writer thread
    // repeatedly invalidates the cache entry and rebuilds it from a cold
    // scan, while reader threads issue the same query the whole time. A
    // reader admitted mid-rebuild must either hit the old complete entry,
    // miss and scan for itself (possibly sharing the writer's scan), or
    // hit the freshly completed entry — never a half-built one. Any
    // partial entry would change the answer bytes.
    let service = Arc::new(test_service_with("cache_snapshot", 32, 1, 2, |c| {
        c.coalesce = Some(CoalesceConfig {
            window_ms: 1,
            max_batch: 4,
        });
    }));
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 2.5 * stats.rms);
    let bits = |points: &[ThresholdPoint]| {
        let mut v: Vec<(u64, u32)> = points
            .iter()
            .map(|p| (p.zindex, p.value.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    let reference = bits(&service.get_threshold(&q).unwrap().points);
    assert!(!reference.is_empty());

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (service, q, reference, stop) =
            (service.clone(), q.clone(), reference.clone(), stop.clone());
        std::thread::spawn(move || {
            for _ in 0..12 {
                service
                    .cluster()
                    .invalidate_cache_entry("velocity", DerivedField::CurlNorm, 0);
                service.cluster().clear_buffer_pools();
                let r = service.get_threshold(&q).unwrap();
                assert_eq!(bits(&r.points), reference, "writer rebuild diverged");
            }
            stop.store(true, Ordering::SeqCst);
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let (service, q, reference, stop) =
                (service.clone(), q.clone(), reference.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut runs = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    let r = service.get_threshold(&q).unwrap();
                    assert_eq!(
                        bits(&r.points),
                        reference,
                        "mid-scan reader observed a partial cache entry"
                    );
                    runs += 1;
                }
                runs
            })
        })
        .collect();
    writer.join().unwrap();
    let total: u32 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(
        total > 0,
        "readers must have raced the writer at least once"
    );
}

#[test]
fn distinct_derived_fields_have_distinct_cache_entries() {
    let service = test_service("cache_fields", 32, 1, 2);
    let q_vort = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0);
    service.get_threshold(&q_vort).unwrap();
    // same raw field, different derived quantity: must miss
    let q_grad = ThresholdQuery::whole_timestep("velocity", DerivedField::GradientNorm, 0, 25.0);
    let r = service.get_threshold(&q_grad).unwrap();
    assert_eq!(r.cache_hits, 0);
    // magnetic-field current norm is independent of velocity vorticity
    let q_cur = ThresholdQuery::whole_timestep("magnetic", DerivedField::CurlNorm, 0, 25.0);
    let r = service.get_threshold(&q_cur).unwrap();
    assert_eq!(r.cache_hits, 0);
    // and the vorticity entry is still there
    let r = service.get_threshold(&q_vort).unwrap();
    assert_eq!(r.cache_hits, r.nodes);
}
