//! Modelled scaling shapes (paper Figs. 7 & 8) hold on the integration
//! scale: scale-out is near-linear, scale-up saturates, I/O is a large
//! share of cold queries, and cache hits collapse the total.

use tdb_cluster::{ClusterConfig, NodeTimeModel};
use tdb_core::{DerivedField, QueryMode, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

fn build_with(nodes: usize, tag: &str, synthetic: Option<f64>) -> TurbulenceService {
    // 128³ with 32³ chunks keeps the halo band a realistic fraction of the
    // data read (a 64³ grid with 16³ chunks nearly doubles every read,
    // which drowns the scaling signal the paper measures at 1024³)
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(128, 1, 0xabc),
        cluster: ClusterConfig {
            num_nodes: nodes,
            procs_per_node: 1,
            arrays_per_node: 4,
            chunk_atoms: 4,
            compute_scale: 6.0,
            synthetic_compute_s_per_point: synthetic,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

fn build(nodes: usize, tag: &str) -> TurbulenceService {
    // deterministic kernel-time model: the scaling assertions must not
    // depend on how loaded the host is
    build_with(nodes, tag, Some(2e-7))
}

/// Runs one cold scan and returns the per-node closed-form time models;
/// `t(p)` is then evaluated from the models instead of re-running the
/// query, so the derived speedups cannot flake on wall-clock noise.
fn cold_models(service: &TurbulenceService) -> Vec<NodeTimeModel> {
    service.cluster().clear_buffer_pools();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 30.0)
        .without_cache()
        .with_procs(1);
    let req = tdb_cluster::mediator::ThresholdRequest {
        raw_field: q.raw_field.clone(),
        derived: q.derived,
        timestep: q.timestep,
        query_box: tdb_zorder::Box3::grid(128, 128, 128),
        threshold: q.threshold,
        use_cache: false,
        mode: QueryMode::Full,
        procs_override: Some(1),
        strict: false,
        node_deadline_s: None,
    };
    let r = service.cluster().get_threshold(&req).unwrap();
    assert!(r.degraded.is_none());
    r.node_models
}

/// Cluster time at `p` processes per node: the slowest node bounds the
/// (barrier-synchronised) scatter-gather.
fn modelled_total(models: &[NodeTimeModel], procs: usize) -> f64 {
    models.iter().map(|m| m.total_s(procs)).fold(0.0, f64::max)
}

#[test]
fn scale_out_is_nearly_linear() {
    let t1 = modelled_total(&cold_models(&build(1, "so1")), 1);
    let t4 = modelled_total(&cold_models(&build(4, "so4")), 1);
    let speedup = t1 / t4;
    // at this test scale the halo shell is a large fraction of each
    // node's reads, so "near-linear" is ~2.2-4x; the repro harness at
    // 128³+ lands closer to the paper's near-perfect scaling
    assert!(
        speedup > 2.2,
        "4-node scale-out speedup should be near-linear, got {speedup:.2}"
    );
    assert!(speedup <= 4.5, "speedup cannot beat linear: {speedup:.2}");
}

#[test]
fn scale_up_speedup_diminishes() {
    // one cold run; t(p) then comes from the per-node time models, which
    // is both deterministic and exactly the quantity the paper's Fig. 7
    // plots (modelled node time against worker count)
    let models = cold_models(&build(4, "su"));
    let t1 = modelled_total(&models, 1);
    let t2 = modelled_total(&models, 2);
    let t8 = modelled_total(&models, 8);
    let s2 = t1 / t2;
    let s8 = t1 / t8;
    assert!(s2 > 1.5, "2-process speedup too small: {s2:.2}");
    assert!(
        s8 >= s2,
        "more processes must not hurt the modelled time: {s2:.2} → {s8:.2}"
    );
    // saturation: the per-device makespan floor and the largest single
    // chunk bound t(8) away from linear speedup
    assert!(
        s8 < 7.5,
        "8-process speedup must saturate below linear, got {s8:.2}"
    );
}

#[test]
fn io_is_substantial_share_of_cold_queries() {
    // Fig. 8: the I/O time is about half of the total running time
    let service = build(4, "ioshare");
    service.cluster().clear_buffer_pools();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 30.0)
        .without_cache()
        .with_procs(1);
    let r = service.get_threshold(&q).unwrap();
    let share = r.breakdown.io_s / (r.breakdown.io_s + r.breakdown.compute_s);
    assert!(
        (0.15..=0.98).contains(&share),
        "I/O share out of plausible range: {share:.2}"
    );
    // and an I/O-only run costs no more than the full run
    service.cluster().clear_buffer_pools();
    let q_io = ThresholdQuery {
        mode: QueryMode::IoOnly,
        ..q.clone()
    };
    let rio = service.get_threshold(&q_io).unwrap();
    // same reads, so same modelled I/O up to first-touch races between
    // concurrently-fetching nodes (which of two nodes gets charged for a
    // shared boundary block varies run to run)
    let ratio = rio.breakdown.io_s / r.breakdown.io_s;
    assert!(
        (0.75..=1.25).contains(&ratio),
        "I/O-only vs full-run I/O diverged: {ratio:.2}"
    );
}

#[test]
fn derived_fields_cost_more_compute_than_raw_fields() {
    // Fig. 9: Q-criterion compute > vorticity compute > magnetic (raw).
    // This ordering IS about per-kernel cost differences, so it uses
    // measured CPU time, not the synthetic per-point model. Contention
    // from concurrently running tests only ever inflates a measurement,
    // so the minimum over three runs is a stable per-kernel estimate.
    let service = build_with(2, "fieldcost", None);
    let run = |raw: &str, derived: DerivedField| {
        let mut compute = f64::INFINITY;
        let mut io = f64::INFINITY;
        for _ in 0..3 {
            service.cluster().clear_buffer_pools();
            let q = ThresholdQuery::whole_timestep(raw, derived, 0, 1e12).without_cache();
            let b = service.get_threshold(&q).unwrap().breakdown;
            compute = compute.min(b.compute_s);
            io = io.min(b.io_s);
        }
        (compute, io)
    };
    let (vort_compute, vort_io) = run("velocity", DerivedField::CurlNorm);
    let (qcrit_compute, _) = run("velocity", DerivedField::QCriterion);
    let (raw_compute, raw_io) = run("magnetic", DerivedField::Norm);
    assert!(
        qcrit_compute > vort_compute,
        "Q ({qcrit_compute:.4}s) should out-cost vorticity ({vort_compute:.4}s)"
    );
    assert!(
        raw_compute < vort_compute,
        "raw field ({raw_compute:.4}s) should be cheapest (vort {vort_compute:.4}s)"
    );
    // raw field needs no halo → strictly less I/O than a derived field
    assert!(raw_io <= vort_io);
}
