//! Modelled scaling shapes (paper Figs. 7 & 8) hold on the integration
//! scale: scale-out is near-linear, scale-up saturates, I/O is a large
//! share of cold queries, and cache hits collapse the total.

use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, QueryMode, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

fn build(nodes: usize, tag: &str) -> TurbulenceService {
    // 128³ with 32³ chunks keeps the halo band a realistic fraction of the
    // data read (a 64³ grid with 16³ chunks nearly doubles every read,
    // which drowns the scaling signal the paper measures at 1024³)
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(128, 1, 0xabc),
        cluster: ClusterConfig {
            num_nodes: nodes,
            procs_per_node: 1,
            arrays_per_node: 4,
            chunk_atoms: 4,
            compute_scale: 6.0,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

fn cold_total(service: &TurbulenceService, procs: usize) -> f64 {
    service.cluster().clear_buffer_pools();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 30.0)
        .without_cache()
        .with_procs(procs);
    let r = service.get_threshold(&q).unwrap();
    r.breakdown.io_s + r.breakdown.compute_s
}

#[test]
fn scale_out_is_nearly_linear() {
    let t1 = cold_total(&build(1, "so1"), 1);
    let t4 = cold_total(&build(4, "so4"), 1);
    let speedup = t1 / t4;
    // at this 64³ test scale the halo shell is a large fraction of each
    // node's reads, so "near-linear" is ~2.2-3.5x; the repro harness at
    // 128³+ lands closer to the paper's near-perfect scaling
    assert!(
        speedup > 2.2,
        "4-node scale-out speedup should be near-linear, got {speedup:.2}"
    );
    assert!(speedup <= 4.5, "speedup cannot beat linear: {speedup:.2}");
}

#[test]
fn scale_up_speedup_diminishes() {
    let service = build(4, "su");
    let t1 = cold_total(&service, 1);
    let t2 = cold_total(&service, 2);
    let t8 = cold_total(&service, 8);
    let s2 = t1 / t2;
    let s8 = t1 / t8;
    assert!(s2 > 1.5, "2-process speedup too small: {s2:.2}");
    assert!(
        s8 >= s2 * 0.95,
        "more processes must not hurt: {s2:.2} → {s8:.2}"
    );
    // at this tiny scale the first-touch distribution of block reads over
    // arrays varies run to run; the precise saturation shape is pinned by
    // the NodeTimeModel unit tests and the repro harness at 128³+
    assert!(
        s8 < 7.5,
        "8-process speedup must saturate below linear, got {s8:.2}"
    );
}

#[test]
fn io_is_substantial_share_of_cold_queries() {
    // Fig. 8: the I/O time is about half of the total running time
    let service = build(4, "ioshare");
    service.cluster().clear_buffer_pools();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 30.0)
        .without_cache()
        .with_procs(1);
    let r = service.get_threshold(&q).unwrap();
    let share = r.breakdown.io_s / (r.breakdown.io_s + r.breakdown.compute_s);
    assert!(
        (0.15..=0.98).contains(&share),
        "I/O share out of plausible range: {share:.2}"
    );
    // and an I/O-only run costs no more than the full run
    service.cluster().clear_buffer_pools();
    let q_io = ThresholdQuery {
        mode: QueryMode::IoOnly,
        ..q.clone()
    };
    let rio = service.get_threshold(&q_io).unwrap();
    // same reads, so same modelled I/O up to first-touch races between
    // concurrently-fetching nodes (which of two nodes gets charged for a
    // shared boundary block varies run to run)
    let ratio = rio.breakdown.io_s / r.breakdown.io_s;
    assert!(
        (0.75..=1.25).contains(&ratio),
        "I/O-only vs full-run I/O diverged: {ratio:.2}"
    );
}

#[test]
fn derived_fields_cost_more_compute_than_raw_fields() {
    // Fig. 9: Q-criterion compute > vorticity compute > magnetic (raw)
    let service = build(2, "fieldcost");
    let run = |raw: &str, derived: DerivedField| {
        service.cluster().clear_buffer_pools();
        let q = ThresholdQuery::whole_timestep(raw, derived, 0, 1e12).without_cache();
        service.get_threshold(&q).unwrap().breakdown
    };
    let vort = run("velocity", DerivedField::CurlNorm);
    let qcrit = run("velocity", DerivedField::QCriterion);
    let raw = run("magnetic", DerivedField::Norm);
    assert!(
        qcrit.compute_s > vort.compute_s,
        "Q ({:.4}s) should out-cost vorticity ({:.4}s)",
        qcrit.compute_s,
        vort.compute_s
    );
    assert!(
        raw.compute_s < vort.compute_s,
        "raw field ({:.4}s) should be cheapest (vort {:.4}s)",
        raw.compute_s,
        vort.compute_s
    );
    // raw field needs no halo → strictly less I/O than a derived field
    assert!(raw.io_s <= vort.io_s);
}
