//! Self-test corpus for tdb-lint: one known-bad snippet per rule proving
//! the rule fires, pragma/test-code suppression checks, and property
//! tests that the hand-rolled lexer never panics on arbitrary bytes and
//! exactly round-trips every source file in this workspace.

use proptest::prelude::*;
use tdb_lint::lexer::lex;
use tdb_lint::rules::{self, DeclaredMetrics};
use tdb_lint::scan::SourceFile;

// --- one known-bad snippet per rule --------------------------------------

#[test]
fn float_width_fires_on_f32_threshold_comparison() {
    let f = SourceFile::new(
        "crates/core/src/bad.rs",
        r#"
fn above_threshold(values: &[f64], threshold: f64) -> usize {
    let t = threshold as f32;
    values.iter().filter(|&&v| v as f32 >= t).count()
}
"#,
    );
    let got = rules::float_width(&f);
    assert_eq!(got.len(), 2, "both f32 casts must be flagged: {got:?}");
    assert!(got.iter().all(|f| f.rule == "float-width"));
    assert!(got[0].message.contains("threshold"));
}

#[test]
fn lock_graph_fires_on_inverted_acquisition() {
    let a = SourceFile::new(
        "crates/cluster/src/bad_a.rs",
        "fn f(&self) { let s = self.stats.lock(); let q = self.queue.lock(); }",
    );
    let b = SourceFile::new(
        "crates/cluster/src/bad_b.rs",
        "fn g(&self) { let q = self.queue.lock(); let s = self.stats.lock(); }",
    );
    let got = rules::lock_graph(&[a, b]);
    assert!(
        got.iter()
            .any(|f| f.rule == "lock-graph" && f.message.contains("cycle")),
        "inverted acquisition order must be flagged: {got:?}"
    );
}

#[test]
fn lock_graph_consistent_acquisition_passes() {
    // the acyclic must-pass fixture: every function agrees on
    // stats-before-queue, including one reached through a call edge
    let a = SourceFile::new(
        "crates/cluster/src/good_a.rs",
        "fn f(&self) { let s = self.stats.lock(); self.enqueue(1); }\n\
         fn enqueue(&self, n: u32) { let q = self.queue.lock(); }",
    );
    let b = SourceFile::new(
        "crates/cluster/src/good_b.rs",
        "fn g(&self) { let s = self.stats.lock(); let q = self.queue.lock(); }",
    );
    assert!(rules::lock_graph(&[a, b]).is_empty());
}

#[test]
fn lock_graph_fires_on_cycle_through_a_call() {
    // the cyclic must-fail fixture: the inversion is only visible after
    // following `f`'s intra-crate call into `enqueue` one level deep
    let a = SourceFile::new(
        "crates/cluster/src/bad_call.rs",
        "fn f(&self) { let s = self.stats.lock(); self.enqueue(1); }\n\
         fn enqueue(&self, n: u32) { let q = self.queue.lock(); }\n\
         fn g(&self) { let q = self.queue.lock(); let s = self.stats.lock(); }",
    );
    let got = rules::lock_graph(std::slice::from_ref(&a));
    assert!(
        got.iter()
            .any(|f| f.message.contains("via call to `enqueue`")),
        "call-mediated cycle must be flagged: {got:?}"
    );
}

#[test]
fn lock_order_fires_on_guard_held_across_channel_wait() {
    let f = SourceFile::new(
        "crates/wire/src/bad.rs",
        "fn f(&self) { let g = self.state.lock(); let answer = rx.recv(); }",
    );
    let got = rules::lock_order(std::slice::from_ref(&f));
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].message.contains("recv"));
}

#[test]
fn panic_path_fires_on_unwrap_expect_panic_and_indexing() {
    let f = SourceFile::new(
        "crates/wire/src/bad.rs",
        r#"
fn handle(frames: Vec<Frame>, i: usize) -> Frame {
    let head = frames.first().unwrap();
    let tail = frames.last().expect("nonempty");
    if i > frames.len() {
        panic!("out of range");
    }
    let _ = (head, tail);
    frames[i]
}
"#,
    );
    let got = rules::panic_path(&f);
    assert_eq!(got.len(), 4, "unwrap, expect, panic! and [i]: {got:?}");
}

#[test]
fn metrics_registry_fires_in_both_directions() {
    let declared = DeclaredMetrics::from_list(&["cache.hits", "io.ops.*", "orphan.metric"]);
    let f = SourceFile::new(
        "crates/cache/src/bad.rs",
        r#"
fn report(reg: &Registry, name: &str) {
    tdb_obs::add("cache.hits", 1);
    tdb_obs::add("cache.hitz", 1);
    reg.add(&format!("io.ops.{name}"), 2);
}
"#,
    );
    let got = rules::metrics_registry(std::slice::from_ref(&f), &declared);
    assert!(
        got.iter().any(|f| f.message.contains("cache.hitz")),
        "undeclared name must be flagged: {got:?}"
    );
    assert!(
        got.iter().any(|f| f.message.contains("orphan.metric")),
        "declared-but-unreported name must be flagged: {got:?}"
    );
    assert_eq!(got.len(), 2, "declared names must not be flagged: {got:?}");
}

#[test]
fn error_context_fires_on_bare_io_question_mark() {
    let f = SourceFile::new(
        "crates/storage/src/bad.rs",
        r#"
fn load(&mut self) -> StorageResult<()> {
    self.file.read_exact_at(&mut self.buf, 0)?;
    Ok(())
}
"#,
    );
    let got = rules::error_context(&f);
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].message.contains("read_exact_at"));

    let fixed = SourceFile::new(
        "crates/storage/src/good.rs",
        r#"
fn load(&mut self) -> StorageResult<()> {
    self.file.read_exact_at(&mut self.buf, 0).at_file(&self.path)?;
    Ok(())
}
"#,
    );
    assert!(rules::error_context(&fixed).is_empty());
}

// --- suppression ----------------------------------------------------------

#[test]
fn pragma_and_test_code_suppress_findings() {
    let pragma = SourceFile::new(
        "crates/wire/src/ok.rs",
        "fn f(v: Vec<u8>) -> u8 {\n    // tdb-lint: allow(panic-path) — length checked by caller\n    v[0]\n}\n",
    );
    assert!(
        rules::panic_path(&pragma).is_empty(),
        "pragma must suppress"
    );

    let test_code = SourceFile::new(
        "crates/wire/src/ok.rs",
        "#[cfg(test)]\nmod tests {\n    fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }\n}\n",
    );
    assert!(
        rules::panic_path(&test_code).is_empty(),
        "test code is exempt"
    );

    let test_file = SourceFile::new("tests/anything.rs", "fn f(v: Vec<u8>) -> u8 { v[0] }");
    assert!(
        rules::panic_path(&test_file).is_empty(),
        "tests/ files are exempt"
    );
}

// --- output determinism ----------------------------------------------------

#[test]
fn findings_sort_by_rule_then_path_then_line() {
    let mk = |rule: &str, path: &str, line: u32| rules::Finding {
        rule: rule.into(),
        path: path.into(),
        line,
        message: "m".into(),
        line_text: "t".into(),
    };
    let mut got = vec![
        mk("panic-path", "crates/a.rs", 1),
        mk("float-width", "crates/b.rs", 9),
        mk("float-width", "crates/a.rs", 5),
        mk("float-width", "crates/a.rs", 2),
    ];
    got.sort();
    let order: Vec<(String, String, u32)> =
        got.into_iter().map(|f| (f.rule, f.path, f.line)).collect();
    assert_eq!(
        order,
        [
            ("float-width".into(), "crates/a.rs".into(), 2),
            ("float-width".into(), "crates/a.rs".into(), 5),
            ("float-width".into(), "crates/b.rs".into(), 9),
            ("panic-path".into(), "crates/a.rs".into(), 1),
        ]
    );
}

#[test]
fn json_report_is_byte_stable_and_escaped() {
    let finding = rules::Finding {
        rule: "panic-path".into(),
        path: "crates/wire/src/x.rs".into(),
        line: 3,
        message: "`.unwrap()` on the \"query\" path".into(),
        line_text: "let x = v.unwrap();\t// tail".into(),
    };
    let report = tdb_lint::apply_baseline(vec![finding], &[]);
    let a = tdb_lint::render_json(&report);
    let b = tdb_lint::render_json(&report);
    assert_eq!(a, b, "same report must render byte-identically");
    assert!(a.contains(r#"\"query\""#), "quotes must be escaped: {a}");
    assert!(a.contains(r"\t"), "control characters must be escaped: {a}");
    assert!(a.contains("\"line\":3"));
}

// --- lexer properties ------------------------------------------------------

/// Tokens must tile the input exactly: concatenating every token's text
/// reproduces the source byte for byte.
fn assert_round_trip(src: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "token gap/overlap at byte {pos}");
        rebuilt.push_str(t.text(src));
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover the whole input");
    assert_eq!(rebuilt, src);
}

#[test]
fn lexer_round_trips_every_workspace_source() {
    let root = tdb_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let mut checked = 0;
    for top in tdb_lint::SCAN_ROOTS {
        let dir = root.join(top);
        if !dir.is_dir() {
            continue;
        }
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).expect("readable dir") {
                let path = entry.expect("dir entry").path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let src = std::fs::read_to_string(&path).expect("readable source");
                    assert_round_trip(&src);
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked > 50,
        "expected a real workspace, saw {checked} files"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer must never panic and must round-trip on arbitrary bytes
    /// (valid UTF-8 via lossy conversion — the driver reads files as
    /// strings, so that is the real input domain).
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        assert_round_trip(&src);
    }

    /// Same property over inputs biased toward Rust-ish trouble: quote
    /// and hash runs, half-open strings, raw-string prefixes, nested
    /// comment openers.
    #[test]
    fn lexer_never_panics_on_adversarial_fragments(
        picks in prop::collection::vec(0usize..12, 0..64),
    ) {
        const FRAGMENTS: &[&str] = &[
            "r#\"", "\"", "'", "b'", "/*", "*/", "//", "r##", "0x", "1.",
            "'a", "\\",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_round_trip(&src);
    }
}
