//! Distribution transparency: the number of nodes, processes, chunk size
//! or FD order of the *storage layout* must never change query answers —
//! only their cost.

use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

fn build(nodes: usize, procs: usize, chunk_atoms: u32, tag: &str) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xfeed),
        cluster: ClusterConfig {
            num_nodes: nodes,
            procs_per_node: procs,
            arrays_per_node: 2,
            chunk_atoms,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

fn answer(service: &TurbulenceService) -> Vec<(u64, f32)> {
    let q =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 28.0).without_cache();
    service
        .get_threshold(&q)
        .unwrap()
        .points
        .into_iter()
        .map(|p| (p.zindex, p.value))
        .collect()
}

#[test]
fn answers_are_independent_of_node_count() {
    let reference = answer(&build(1, 2, 2, "dc_n1"));
    assert!(!reference.is_empty());
    for nodes in [2, 3, 4, 8] {
        let got = answer(&build(nodes, 2, 2, &format!("dc_n{nodes}")));
        assert_eq!(got, reference, "{nodes}-node answer differs");
    }
}

#[test]
fn answers_are_independent_of_process_count() {
    let reference = answer(&build(2, 1, 2, "dc_p1"));
    for procs in [2, 4, 8] {
        let got = answer(&build(2, procs, 2, &format!("dc_p{procs}")));
        assert_eq!(got, reference, "{procs}-process answer differs");
    }
}

#[test]
fn answers_are_independent_of_chunk_size() {
    let reference = answer(&build(2, 2, 1, "dc_c1"));
    let got = answer(&build(2, 2, 2, "dc_c2"));
    assert_eq!(got, reference, "chunk_atoms=2 answer differs");
    // chunk_atoms=4 tiles a 32³ grid into a single chunk: single node only
    let got = answer(&build(1, 2, 4, "dc_c4"));
    assert_eq!(got, reference, "chunk_atoms=4 answer differs");
}

#[test]
fn halo_exchange_is_exact_at_node_boundaries() {
    // With 8 nodes on a 32³ grid every chunk borders foreign atoms, so a
    // kernel bug at node boundaries would corrupt many points: compare a
    // wide-halo (order-8) query across node counts.
    let mk = |nodes: usize, tag: &str| {
        let config = ServiceConfig {
            dataset: SyntheticDataset::mhd(32, 1, 0xbeef),
            cluster: ClusterConfig {
                num_nodes: nodes,
                procs_per_node: 2,
                arrays_per_node: 2,
                chunk_atoms: 1,
                fd_order: tdb_kernels::FdOrder::O8,
                ..ClusterConfig::default()
            },
            limits: Default::default(),
            data_dir: tdb_bench::scratch_dir(tag),
        };
        TurbulenceService::build(config).expect("build")
    };
    let a = answer(&mk(1, "dc_h1"));
    let b = answer(&mk(8, "dc_h8"));
    assert_eq!(a, b);
}

#[test]
fn pdf_and_topk_are_distribution_transparent() {
    let s1 = build(1, 1, 2, "dc_pdf1");
    let s4 = build(4, 2, 2, "dc_pdf4");
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::QCriterion, 0, 0.0);
    let p1 = s1.get_pdf(&q, -200.0, 25.0, 16).unwrap();
    let p4 = s4.get_pdf(&q, -200.0, 25.0, 16).unwrap();
    assert_eq!(p1.histogram.counts(), p4.histogram.counts());
    let t1 = s1.get_topk(&q, 25).unwrap();
    let t4 = s4.get_topk(&q, 25).unwrap();
    let v1: Vec<f32> = t1.points.iter().map(|p| p.value).collect();
    let v4: Vec<f32> = t4.points.iter().map(|p| p.value).collect();
    assert_eq!(v1, v4);
}
