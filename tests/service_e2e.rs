//! End-to-end correctness: generator → storage → cluster → query answers
//! must match a direct whole-field evaluation of the same data.

use tdb_bench::test_service;
use tdb_core::{DerivedField, QueryError, ThresholdQuery};
use tdb_field::{FieldStats, PaddedVector};
use tdb_kernels::DiffScheme;
use tdb_turbgen::dataset::FieldData;
use tdb_zorder::{decode3, Box3};

/// Reference evaluation: regenerate the time-step and compute the derived
/// norm over the whole grid directly.
fn reference_points(
    service: &tdb_core::TurbulenceService,
    raw_field: &str,
    derived: DerivedField,
    timestep: u32,
    threshold: f64,
) -> Vec<(u32, u32, u32, f32)> {
    let step = service.dataset().generate(timestep);
    let data = step
        .fields
        .iter()
        .find(|(n, _)| *n == raw_field)
        .map(|(_, d)| match d {
            FieldData::Vector(v) => v.clone(),
            FieldData::Scalar(s) => FieldData::Scalar(s.clone()).as_vector3(),
        })
        .unwrap();
    let scheme = DiffScheme::new(&service.dataset().grid, service.cluster().config().fd_order);
    let (nx, ny, nz) = data.dims();
    let mut padded = PaddedVector::zeros(nx, ny, nz, derived.halo(&scheme));
    padded.fill_periodic_from(&data, [0, 0, 0]);
    let norm = derived.eval(&padded, &scheme, [0, 0, 0]);
    let mut out = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = norm.get(x, y, z);
                if f64::from(v) >= threshold {
                    out.push((x as u32, y as u32, z as u32, v));
                }
            }
        }
    }
    out
}

#[test]
fn threshold_query_matches_direct_evaluation() {
    let service = test_service("e2e_match", 32, 2, 3);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 1)
        .unwrap();
    let threshold = 3.0 * stats.rms;
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 1, threshold)
        .without_cache();
    let result = service.get_threshold(&q).unwrap();
    let mut expect = reference_points(&service, "velocity", DerivedField::CurlNorm, 1, threshold);
    assert!(!expect.is_empty(), "test threshold should select something");
    expect.sort_by_key(|&(x, y, z, _)| tdb_zorder::encode3(x, y, z));
    assert_eq!(result.points.len(), expect.len());
    for (p, (x, y, z, v)) in result.points.iter().zip(&expect) {
        assert_eq!(p.coords(), (*x, *y, *z));
        assert!(
            (p.value - v).abs() <= 1e-5 * v.abs().max(1.0),
            "value mismatch at {:?}",
            p.coords()
        );
    }
}

#[test]
fn raw_field_threshold_needs_no_kernel_and_matches() {
    let service = test_service("e2e_raw", 32, 1, 2);
    let stats = service
        .derived_stats("magnetic", DerivedField::Norm, 0)
        .unwrap();
    let threshold = 2.5 * stats.rms;
    let q = ThresholdQuery::whole_timestep("magnetic", DerivedField::Norm, 0, threshold)
        .without_cache();
    let result = service.get_threshold(&q).unwrap();
    let expect = reference_points(&service, "magnetic", DerivedField::Norm, 0, threshold);
    assert_eq!(result.points.len(), expect.len());
    // raw-field queries spend no compute phase worth mentioning vs I/O
    assert!(result.breakdown.io_s > 0.0);
}

#[test]
fn boxed_query_returns_only_points_inside() {
    let service = test_service("e2e_box", 32, 1, 3);
    let qbox = Box3::new([4, 8, 0], [27, 23, 15]);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let threshold = 2.0 * stats.rms;
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, threshold)
        .without_cache()
        .in_box(qbox);
    let result = service.get_threshold(&q).unwrap();
    assert!(!result.points.is_empty());
    for p in &result.points {
        let (x, y, z) = p.coords();
        assert!(
            qbox.contains_point(x, y, z),
            "point {:?} outside box",
            (x, y, z)
        );
    }
    // equals the reference restricted to the box
    let expect: Vec<_> =
        reference_points(&service, "velocity", DerivedField::CurlNorm, 0, threshold)
            .into_iter()
            .filter(|&(x, y, z, _)| qbox.contains_point(x, y, z))
            .collect();
    assert_eq!(result.points.len(), expect.len());
}

#[test]
fn pdf_matches_direct_histogram_and_guides_thresholds() {
    let service = test_service("e2e_pdf", 32, 1, 2);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    let pdf = service.get_pdf(&q, 0.0, 10.0, 9).unwrap();
    assert_eq!(pdf.histogram.total(), 32 * 32 * 32);
    // monotone-ish decay: first bin outweighs the overflow region
    assert!(pdf.histogram.count(0) > pdf.histogram.count(9));
    // histogram matches a direct evaluation
    let expect = reference_points(&service, "velocity", DerivedField::CurlNorm, 0, 0.0);
    let mut direct = tdb_field::Histogram::new(0.0, 10.0, 9);
    for (_, _, _, v) in expect {
        direct.push(f64::from(v));
    }
    assert_eq!(pdf.histogram.counts(), direct.counts());
}

#[test]
fn topk_returns_the_global_maxima() {
    let service = test_service("e2e_topk", 32, 1, 3);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    let top = service.get_topk(&q, 10).unwrap();
    assert_eq!(top.points.len(), 10);
    // sorted descending and globally correct
    let mut expect = reference_points(&service, "velocity", DerivedField::CurlNorm, 0, 0.0);
    expect.sort_by(|a, b| b.3.total_cmp(&a.3));
    for (p, e) in top.points.iter().zip(expect.iter().take(10)) {
        assert!((p.value - e.3).abs() < 1e-5 * e.3.abs().max(1.0));
    }
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    assert!(f64::from(top.points[0].value) <= stats.max * (1.0 + 1e-6));
}

#[test]
fn guided_topk_equals_full_scan_topk() {
    let service = test_service("e2e_guided", 32, 1, 2);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    let full = service.get_topk(&q, 25).unwrap();
    let guided = service.get_topk_guided(&q, 25).unwrap();
    assert_eq!(guided.len(), 25);
    for (a, b) in guided.iter().zip(&full.points) {
        assert_eq!(a.zindex, b.zindex, "guided top-k must match the full scan");
        assert_eq!(a.value, b.value);
    }
    // second run reuses the cached PDF and threshold entries
    let again = service.get_topk_guided(&q, 25).unwrap();
    assert_eq!(again.len(), 25);
    assert!(service.cluster().cache_stats().hits > 0);
    // k = 1 degenerate case
    let one = service.get_topk_guided(&q, 1).unwrap();
    assert_eq!(one[0].zindex, full.points[0].zindex);
}

#[test]
fn cutout_returns_exact_raw_data() {
    let service = test_service("e2e_cutout", 32, 1, 2);
    let b = Box3::new([8, 8, 8], [15, 15, 15]);
    let (cut, breakdown) = service.get_cutout("velocity", 0, &b).unwrap();
    assert_eq!(cut.dims(), (8, 8, 8));
    let step = service.dataset().generate(0);
    let FieldData::Vector(v) = &step.fields[0].1 else {
        panic!()
    };
    for z in 0..8 {
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(cut.at(x, y, z), v.at(8 + x, 8 + y, 8 + z));
            }
        }
    }
    assert!(breakdown.mediator_user_s > 0.0, "user transfer modelled");
}

#[test]
fn point_interpolation_matches_direct_evaluation() {
    let service = test_service("e2e_interp", 32, 1, 3);
    let step = service.dataset().generate(0);
    let tdb_turbgen::dataset::FieldData::Vector(v) = &step.fields[0].1 else {
        panic!()
    };
    // on-node positions reproduce stored values exactly
    let on_grid = [[5.0, 6.0, 7.0], [31.0, 0.0, 16.0]];
    let (vals, breakdown) = service
        .interpolate_at("velocity", 0, &on_grid, tdb_core::LagOrder::Lag6)
        .unwrap();
    for (val, pos) in vals.iter().zip(&on_grid) {
        let expect = v.at(pos[0] as usize, pos[1] as usize, pos[2] as usize);
        for c in 0..3 {
            assert!(
                (val[c] - expect[c]).abs() < 1e-4,
                "on-grid mismatch at {pos:?}"
            );
        }
    }
    assert!(breakdown.io_s > 0.0);
    // off-grid positions agree with a direct whole-field interpolation
    let off_grid = [[5.25, 6.5, 7.75], [0.1, 31.9, 15.5]];
    let (vals, _) = service
        .interpolate_at("velocity", 0, &off_grid, tdb_core::LagOrder::Lag6)
        .unwrap();
    let (nx, ny, nz) = v.dims();
    let mut padded = PaddedVector::zeros(nx, ny, nz, 4);
    padded.fill_periodic_from(v, [0, 0, 0]);
    for (val, pos) in vals.iter().zip(&off_grid) {
        let expect = tdb_kernels::interp::interpolate::<3>(
            &padded,
            tdb_kernels::interp::LagOrder::Lag6,
            *pos,
        );
        for c in 0..3 {
            assert!(
                (val[c] - expect[c]).abs() < 1e-4,
                "off-grid mismatch at {pos:?}: {val:?} vs {expect:?}"
            );
        }
    }
    // periodic wrap: position beyond the domain equals its wrapped twin
    let (a, _) = service
        .interpolate_at("velocity", 0, &[[33.5, 2.0, 2.0]], tdb_core::LagOrder::Lag4)
        .unwrap();
    let (b, _) = service
        .interpolate_at("velocity", 0, &[[1.5, 2.0, 2.0]], tdb_core::LagOrder::Lag4)
        .unwrap();
    assert_eq!(a[0], b[0]);
}

#[test]
fn query_validation_errors() {
    let service = test_service("e2e_valid", 32, 2, 2);
    // unknown field
    let q = ThresholdQuery::whole_timestep("nonexistent", DerivedField::Norm, 0, 1.0);
    assert!(matches!(
        service.get_threshold(&q),
        Err(QueryError::UnknownField(_))
    ));
    // bad timestep
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::Norm, 9, 1.0);
    assert!(matches!(
        service.get_threshold(&q),
        Err(QueryError::UnknownTimestep { .. })
    ));
    // out-of-bounds box
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::Norm, 0, 1.0)
        .in_box(Box3::new([0, 0, 0], [40, 10, 10]));
    assert!(matches!(
        service.get_threshold(&q),
        Err(QueryError::RegionOutOfBounds)
    ));
}

#[test]
fn threshold_too_low_is_rejected() {
    let mut config = tdb_core::ServiceConfig::small_mhd(tdb_bench::scratch_dir("e2e_limit"));
    config.dataset = tdb_turbgen::SyntheticDataset::mhd(32, 1, 7);
    config.cluster.chunk_atoms = 2;
    config.limits.max_points = 100;
    let service = tdb_core::TurbulenceService::build(config).unwrap();
    let q =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0).without_cache();
    match service.get_threshold(&q) {
        Err(QueryError::ThresholdTooLow { points, limit }) => {
            assert_eq!(points, 32 * 32 * 32);
            assert_eq!(limit, 100);
        }
        other => panic!("expected ThresholdTooLow, got {other:?}"),
    }
}

#[test]
fn derived_stats_match_field_stats() {
    let service = test_service("e2e_stats", 32, 1, 2);
    let s = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    // generator rescaled vorticity RMS to 10
    assert!((s.rms - 10.0).abs() < 0.1, "rms {}", s.rms);
    assert!(s.max > s.rms * 3.0);
    // threshold_for_fraction is consistent with the PDF
    let thr = service
        .threshold_for_fraction("velocity", DerivedField::CurlNorm, 0, 0.01)
        .unwrap();
    let q =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, thr).without_cache();
    let r = service.get_threshold(&q).unwrap();
    let frac = r.points.len() as f64 / 32.0_f64.powi(3);
    assert!((frac - 0.01).abs() < 0.003, "got fraction {frac}");
    let _ = FieldStats::of; // silence unused-import lints in some configs
    let _ = decode3;
}
