//! The observability layer end-to-end: process-wide metrics move when
//! queries run, query traces agree with the modelled time breakdown, and
//! the f64 threshold comparison keeps warm answers byte-identical to cold
//! ones even at thresholds no f32 can represent.
//!
//! Metrics are process-global and the test binary runs tests in parallel,
//! so every assertion here is on a *delta* between two snapshots and only
//! ever checks `>=` — concurrent tests can add to a counter but never
//! subtract from it.

use tdb_bench::test_service;
use tdb_core::{AttrValue, DerivedField, ThresholdQuery};

#[test]
fn cold_then_warm_query_moves_bufferpool_and_cache_counters() {
    let service = test_service("obs_counters", 32, 1, 2);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 3.0 * stats.rms);

    let before = service.metrics_snapshot();
    let cold = service.get_threshold(&q).unwrap();
    assert_eq!(cold.cache_hits, 0);
    let warm = service.get_threshold(&q).unwrap();
    assert_eq!(warm.cache_hits, warm.nodes);
    let delta = service.metrics_snapshot().counters_since(&before);
    let get = |k: &str| delta.get(k).copied().unwrap_or(0);

    // the cold run faulted blocks into the buffer pool and missed the
    // semantic cache on every node; the warm run hit it on every node
    assert!(get("bufferpool.misses") > 0, "cold query faults blocks in");
    assert!(get("cache.semantic.misses") >= warm.nodes as u64);
    assert!(get("cache.semantic.inserts") >= warm.nodes as u64);
    assert!(get("cache.semantic.hits") >= warm.nodes as u64);
    assert!(get("node.atoms_scanned") > 0);
    assert!(get("query.threshold.count") >= 2);
    assert!(get("query.threshold.ok") >= 2);
    assert!(get("query.points_returned") >= cold.points.len() as u64);
    let io_bytes: u64 = delta
        .iter()
        .filter(|(k, _)| k.starts_with("io.bytes."))
        .map(|(_, &v)| v)
        .sum();
    assert!(io_bytes > 0, "per-device I/O counters must move");

    // re-evaluating from raw data with the semantic cache bypassed hits
    // the (still warm) buffer pool
    let before = service.metrics_snapshot();
    service
        .cluster()
        .invalidate_cache_entry("velocity", DerivedField::CurlNorm, 0);
    service.get_threshold(&q.clone().without_cache()).unwrap();
    let delta = service.metrics_snapshot().counters_since(&before);
    assert!(
        delta.get("bufferpool.hits").copied().unwrap_or(0) > 0,
        "re-read of resident blocks must count pool hits"
    );
}

#[test]
fn trace_phase_durations_match_the_time_breakdown() {
    let service = test_service("obs_trace", 32, 1, 2);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 2.5 * stats.rms);
    let r = service.get_threshold(&q).unwrap();
    let trace = r.trace.as_ref().expect("threshold queries carry a trace");
    let b = &r.breakdown;

    let phase = |name: &str| {
        trace
            .span(name)
            .unwrap_or_else(|| panic!("missing span {name}"))
            .duration_s
    };
    assert_eq!(phase("phase.cache_lookup"), b.cache_lookup_s);
    assert_eq!(phase("phase.io"), b.io_s);
    assert_eq!(phase("phase.compute"), b.compute_s);
    assert_eq!(phase("phase.mediator_db"), b.mediator_db_s);
    assert_eq!(phase("phase.mediator_user"), b.mediator_user_s);
    assert_eq!(trace.root.duration_s, b.total_s());

    // one child span per node under the I/O phase; their point counts sum
    // to the answer and each records its cache outcome
    let io = trace.span("phase.io").unwrap();
    assert_eq!(io.children.len(), r.nodes);
    let node_points: u64 = io
        .children
        .iter()
        .map(|c| match c.attr("points") {
            Some(AttrValue::U64(n)) => *n,
            other => panic!("node span points attr: {other:?}"),
        })
        .sum();
    assert_eq!(node_points, r.points.len() as u64);
    for c in &io.children {
        assert!(
            matches!(c.attr("cache"), Some(AttrValue::Str(s)) if s == "hit" || s == "miss"),
            "node spans record their cache outcome"
        );
        assert!(c.attr("atoms_scanned").is_some());
    }
}

#[test]
fn pdf_and_topk_queries_return_traces_too() {
    let service = test_service("obs_trace_kinds", 32, 1, 2);
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);

    let pdf = service.get_pdf(&q, 0.0, 10.0, 9).unwrap();
    let t = pdf.trace.as_ref().expect("pdf queries carry a trace");
    assert_eq!(t.root.name, "query.pdf");
    assert_eq!(t.span("phase.io").unwrap().duration_s, pdf.breakdown.io_s);

    let topk = service.get_topk(&q, 5).unwrap();
    let t = topk.trace.as_ref().expect("topk queries carry a trace");
    assert_eq!(t.root.name, "query.topk");
    assert_eq!(
        t.span("phase.compute").unwrap().duration_s,
        topk.breakdown.compute_s
    );
}

#[test]
fn warm_answers_are_byte_identical_at_non_f32_representable_thresholds() {
    let service = test_service("obs_f64_boundary", 32, 1, 2);
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .unwrap();
    // a first run to find a value the field actually attains
    let q0 = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 2.5 * stats.rms);
    let base = service.get_threshold(&q0).unwrap();
    assert!(!base.points.is_empty());
    let v = base
        .points
        .iter()
        .map(|p| p.value)
        .fold(f32::INFINITY, f32::min);

    // nudge the threshold just above that value in f64: no f32 can
    // represent the difference, so an f32 comparison (`threshold as f32`)
    // would wrongly admit points with value exactly `v`
    let thr = f64::from(v) + 1e-9;
    assert_eq!(thr as f32, v, "threshold must round to v in f32");
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, thr);

    service
        .cluster()
        .invalidate_cache_entry("velocity", DerivedField::CurlNorm, 0);
    let cold = service.get_threshold(&q).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert!(
        cold.points.len() < base.points.len(),
        "points with value exactly v must be excluded by the f64 comparison"
    );
    assert!(cold.points.iter().all(|p| f64::from(p.value) >= thr));

    let warm = service.get_threshold(&q).unwrap();
    assert_eq!(warm.cache_hits, warm.nodes);
    assert_eq!(cold.points.len(), warm.points.len());
    for (a, b) in cold.points.iter().zip(&warm.points) {
        assert_eq!(a.zindex, b.zindex);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
}
