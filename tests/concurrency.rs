//! Deterministic concurrency suite: shared-scan coalescing, the mediator
//! scan scheduler, and wire-level admission control.
//!
//! Metric-delta assertions read process-wide counters, so every test in
//! this binary that evaluates queries holds [`METRICS`] for its whole
//! body. The suite is then correct under `--test-threads=1` and under
//! the default parallel runner alike (CI runs both).

use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use tdb_bench::{test_service, test_service_with};
use tdb_cluster::mediator::ThresholdRequest;
use tdb_cluster::{BatchAnswer, BatchQuery, CoalesceConfig};
use tdb_core::{Box3, DerivedField, QueryMode, ThresholdPoint, ThresholdQuery, TurbulenceService};
use tdb_storage::{FaultPlan, FaultRule};
use tdb_wire::admission::AdmissionConfig;
use tdb_wire::client::ClientError;
use tdb_wire::server::{Server, ServerConfig};

static METRICS: Mutex<()> = Mutex::new(());

fn metrics_lock() -> MutexGuard<'static, ()> {
    // a panicking test must not wedge the rest of the suite
    METRICS.lock().unwrap_or_else(|e| e.into_inner())
}

fn counter(name: &str) -> u64 {
    tdb_obs::global().snapshot().counter(name)
}

/// Bit-exact, order-independent view of a threshold answer.
fn point_bits(points: &[ThresholdPoint]) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = points
        .iter()
        .map(|p| (p.zindex, p.value.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn curl_query(threshold: f64) -> ThresholdQuery {
    ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, threshold)
}

/// The PR's acceptance criterion: four concurrent identical queries
/// through the coalesced path decode at least 2x fewer atoms than four
/// independent evaluations, with byte-identical results.
#[test]
fn coalesced_batch_halves_atom_decodes_with_identical_answers() {
    let _g = metrics_lock();
    let service = test_service("conc_accept", 64, 1, 4);
    let q = curl_query(25.0).without_cache();

    // baseline: four independent sequential evaluations
    service.cluster().clear_buffer_pools();
    let before = counter("node.atoms_scanned");
    let mut sequential = Vec::new();
    for _ in 0..4 {
        sequential.push(service.get_threshold(&q).unwrap());
    }
    let independent_atoms = counter("node.atoms_scanned") - before;

    // the same four queries as one coalesced batch
    service.cluster().clear_buffer_pools();
    let before = counter("node.atoms_scanned");
    let saved_before = counter("scan.atoms_saved");
    let batch = service.get_threshold_batch(&vec![q; 4]);
    let shared_atoms = counter("node.atoms_scanned") - before;

    let reference = point_bits(&sequential[0].points);
    assert!(!reference.is_empty(), "threshold must select some points");
    for r in &sequential {
        assert_eq!(point_bits(&r.points), reference);
    }
    for r in batch {
        let r = r.expect("batched query must succeed");
        assert_eq!(
            point_bits(&r.points),
            reference,
            "coalesced answers must be byte-identical to independent ones"
        );
    }
    assert!(
        shared_atoms > 0,
        "the shared scan still decodes every atom once"
    );
    assert!(
        shared_atoms * 2 <= independent_atoms,
        "coalescing must at least halve atom decodes: shared {shared_atoms} vs independent {independent_atoms}"
    );
    assert!(
        counter("scan.atoms_saved") > saved_before,
        "the scheduler must account its savings"
    );
}

/// The scan scheduler: four threads admitted inside one coalescing
/// window become exactly one batch, and each gets the answer it would
/// have received alone.
#[test]
fn scheduler_coalesces_concurrent_identical_queries() {
    let _g = metrics_lock();
    let service = Arc::new(test_service_with("conc_sched", 32, 1, 2, |c| {
        // a window far above thread-startup jitter plus a batch cap equal
        // to the thread count makes the grouping deterministic: the batch
        // closes the moment the fourth query joins, never by timeout
        c.coalesce = Some(CoalesceConfig {
            window_ms: 2000,
            max_batch: 4,
        });
    }));
    let q = curl_query(25.0).without_cache();
    // reference through the direct batch path, which bypasses the
    // scheduler (no 2 s window wait for a solo query)
    let reference = point_bits(
        &service.get_threshold_batch(std::slice::from_ref(&q))[0]
            .as_ref()
            .expect("reference query")
            .points,
    );

    let batches_before = counter("scheduler.batches");
    let coalesced_before = counter("scheduler.coalesced");
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let q = q.clone();
            std::thread::spawn(move || {
                barrier.wait();
                service.get_threshold(&q).unwrap()
            })
        })
        .collect();
    for h in handles {
        let r = h.join().unwrap();
        assert_eq!(point_bits(&r.points), reference);
    }
    assert_eq!(
        counter("scheduler.batches") - batches_before,
        1,
        "all four queries must land in one batch"
    );
    assert_eq!(counter("scheduler.coalesced") - coalesced_before, 3);
}

/// Threshold, PDF and top-k queries over the same (field, derived,
/// timestep) share one scan and still answer exactly like independent
/// evaluations.
#[test]
fn mixed_query_kinds_share_one_scan() {
    let _g = metrics_lock();
    let service = test_service("conc_mixed", 32, 1, 2);
    let cluster = service.cluster();
    let req = ThresholdRequest {
        raw_field: "velocity".into(),
        derived: DerivedField::CurlNorm,
        timestep: 0,
        query_box: Box3::grid(32, 32, 32),
        threshold: 25.0,
        use_cache: false,
        mode: QueryMode::Full,
        procs_override: None,
        strict: false,
        node_deadline_s: None,
    };

    cluster.clear_buffer_pools();
    let before = counter("node.atoms_scanned");
    let t_ref = cluster.get_threshold(&req).unwrap();
    let pdf_ref = cluster.get_pdf(&req, 0.0, 10.0, 9).unwrap();
    let topk_ref = cluster.get_topk(&req, 5).unwrap();
    let independent_atoms = counter("node.atoms_scanned") - before;

    cluster.clear_buffer_pools();
    let before = counter("node.atoms_scanned");
    let answers = cluster.run_batch(vec![
        BatchQuery::Threshold(req.clone()),
        BatchQuery::Pdf {
            req: req.clone(),
            origin: 0.0,
            width: 10.0,
            nbins: 9,
        },
        BatchQuery::TopK { req, k: 5 },
    ]);
    let shared_atoms = counter("node.atoms_scanned") - before;

    let mut answers = answers.into_iter();
    match answers.next().unwrap().unwrap() {
        BatchAnswer::Threshold(t) => {
            assert_eq!(point_bits(&t.points), point_bits(&t_ref.points))
        }
        other => panic!("expected a threshold answer, got {other:?}"),
    }
    match answers.next().unwrap().unwrap() {
        BatchAnswer::Pdf(p) => {
            assert_eq!(p.histogram.counts(), pdf_ref.histogram.counts())
        }
        other => panic!("expected a pdf answer, got {other:?}"),
    }
    match answers.next().unwrap().unwrap() {
        BatchAnswer::TopK(t) => {
            assert_eq!(point_bits(&t.points), point_bits(&topk_ref.points))
        }
        other => panic!("expected a top-k answer, got {other:?}"),
    }
    assert!(
        shared_atoms * 2 <= independent_atoms,
        "three kernels over one scan: shared {shared_atoms} vs independent {independent_atoms}"
    );
}

fn prop_service() -> &'static TurbulenceService {
    static S: OnceLock<TurbulenceService> = OnceLock::new();
    S.get_or_init(|| test_service("conc_prop", 32, 1, 2))
}

fn faulted_service() -> &'static TurbulenceService {
    static S: OnceLock<TurbulenceService> = OnceLock::new();
    S.get_or_init(|| {
        let seed = FaultPlan::seed_from_env(0x7411);
        let plan = FaultPlan::new(seed)
            .with_rule(FaultRule::transient_reads(0.2))
            .shared();
        test_service_with("conc_prop_faults", 32, 1, 2, move |c| {
            c.faults = Some(plan);
        })
    })
}

/// Runs each query alone, then the whole set as one coalesced batch, and
/// demands slot-by-slot byte-identical answers.
fn assert_batch_equals_sequential(service: &TurbulenceService, queries: &[ThresholdQuery]) {
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| {
            service
                .get_threshold(q)
                .expect("sequential query must succeed")
        })
        .collect();
    for (i, r) in service.get_threshold_batch(queries).into_iter().enumerate() {
        let r = r.expect("batched query must succeed");
        assert_eq!(
            point_bits(&r.points),
            point_bits(&sequential[i].points),
            "query {i} diverged between sequential and coalesced evaluation"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random overlapping query sets answer identically whether each
    /// query runs alone or the set runs as one coalesced batch — with
    /// caching on (later queries may hit entries earlier ones built) and
    /// with random sub-boxes that overlap arbitrarily.
    #[test]
    fn coalesced_equals_sequential_for_random_query_sets(
        corner in prop::array::uniform3(0u32..16),
        sizes in prop::collection::vec(prop::array::uniform3(3u32..16), 3..6),
        thresholds in prop::collection::vec(5.0f64..60.0, 3..6),
        cached in prop::collection::vec(any::<bool>(), 3..6),
    ) {
        let _g = metrics_lock();
        let service = prop_service();
        let queries: Vec<ThresholdQuery> = sizes
            .iter()
            .zip(&thresholds)
            .zip(&cached)
            .map(|((size, &threshold), &use_cache)| {
                let lo = corner;
                let hi = [
                    (lo[0] + size[0]).min(31),
                    (lo[1] + size[1]).min(31),
                    (lo[2] + size[2]).min(31),
                ];
                let q = curl_query(threshold).in_box(Box3::new(lo, hi));
                if use_cache { q } else { q.without_cache() }
            })
            .collect();
        assert_batch_equals_sequential(service, &queries);
    }

    /// The same property under deterministic fault injection: transient
    /// read faults fire (fixed `TDB_FAULT_SEED` default 0x7411) on both
    /// paths and retries absorb them to the same byte-identical answers.
    #[test]
    fn coalesced_equals_sequential_under_injected_faults(
        thresholds in prop::collection::vec(10.0f64..50.0, 2..5),
    ) {
        let _g = metrics_lock();
        let service = faulted_service();
        let queries: Vec<ThresholdQuery> = thresholds
            .iter()
            .map(|&t| curl_query(t).without_cache())
            .collect();
        service.cluster().clear_buffer_pools();
        assert_batch_equals_sequential(service, &queries);
    }
}

/// Wire-level load shedding: with one in-flight slot and no queue, a
/// burst of four concurrent clients gets at least one `Busy` and at
/// least one full answer; every admitted answer is correct, and a shed
/// client that retries after the hint eventually succeeds.
#[test]
fn wire_server_sheds_concurrent_burst_with_busy() {
    let _g = metrics_lock();
    let service = Arc::new(test_service("conc_wire", 32, 1, 2));
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_inflight: 1,
            queue_depth: 0,
            busy_retry_ms: 25,
            tenants: Vec::new(),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    let reference = point_bits(&service.get_threshold(&curl_query(25.0)).unwrap().points);
    let shed_before = counter("admission.shed");
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = tdb_wire::Client::connect(addr).expect("connect");
                barrier.wait();
                client.get_threshold("velocity", DerivedField::CurlNorm, 0, None, 25.0)
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut busy = 0usize;
    for h in handles {
        match h.join().unwrap() {
            Ok(answer) => {
                ok += 1;
                assert_eq!(point_bits(&answer.points), reference);
            }
            Err(ClientError::Busy {
                queue_depth,
                retry_ms,
            }) => {
                busy += 1;
                assert_eq!(queue_depth, 0);
                assert_eq!(retry_ms, 25);
            }
            Err(e) => panic!("unexpected client error: {e}"),
        }
    }
    assert_eq!(ok + busy, 4);
    assert!(ok >= 1, "at least one query must be admitted");
    assert!(busy >= 1, "a burst of 4 with one slot must shed");
    assert!(counter("admission.shed") > shed_before);

    // back-off and retry drains: a fresh client keeps retrying on Busy
    // and must get through once the burst is over
    let mut client = tdb_wire::Client::connect(addr).expect("connect");
    let answer = loop {
        match client.get_threshold("velocity", DerivedField::CurlNorm, 0, None, 25.0) {
            Ok(a) => break a,
            Err(ClientError::Busy { retry_ms, .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(retry_ms));
            }
            Err(e) => panic!("unexpected client error: {e}"),
        }
    };
    assert_eq!(point_bits(&answer.points), reference);
    server.stop();
}

/// Control-plane requests are never shed: even with a zero-size queue
/// and a data query in flight, `ping`/`info`/`metrics` answer.
#[test]
fn control_plane_requests_bypass_admission() {
    let _g = metrics_lock();
    let service = Arc::new(test_service("conc_ctl", 32, 1, 2));
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_inflight: 1,
            queue_depth: 0,
            busy_retry_ms: 10,
            tenants: Vec::new(),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(2));
    let b = Arc::clone(&barrier);
    let data = std::thread::spawn(move || {
        let mut client = tdb_wire::Client::connect(addr).expect("connect");
        b.wait();
        client.get_threshold("velocity", DerivedField::CurlNorm, 0, None, 25.0)
    });
    let mut client = tdb_wire::Client::connect(addr).expect("connect");
    barrier.wait();
    for _ in 0..20 {
        client.ping().expect("ping must never be shed");
        let (counters, _) = client.metrics().expect("metrics must never be shed");
        assert!(!counters.is_empty());
    }
    data.join()
        .unwrap()
        .expect("the data query itself succeeds");
    server.stop();
}
