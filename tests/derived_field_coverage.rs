//! Every derived field in the catalogue answers threshold queries through
//! the full distributed stack, including the parameterized filtered norms
//! and the channel-flow (wall-bounded, stretched-grid) dataset.

use tdb_bench::{scratch_dir, test_service};
use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

#[test]
fn every_catalogue_field_evaluates_and_caches() {
    let service = test_service("cat_all", 32, 1, 2);
    let mut fields: Vec<DerivedField> = DerivedField::all().to_vec();
    fields.push(DerivedField::BoxFilteredNorm { radius: 2 });
    for derived in fields {
        let thr = service
            .threshold_for_fraction("velocity", derived, 0, 0.01)
            .unwrap_or_else(|e| panic!("{}: {e}", derived.name()));
        let q = ThresholdQuery::whole_timestep("velocity", derived, 0, thr);
        let cold = service
            .get_threshold(&q)
            .unwrap_or_else(|e| panic!("{}: {e}", derived.name()));
        let warm = service.get_threshold(&q).unwrap();
        assert_eq!(
            warm.cache_hits,
            warm.nodes,
            "{} should hit the cache on re-issue",
            derived.name()
        );
        assert_eq!(cold.points.len(), warm.points.len(), "{}", derived.name());
        // ~1% selectivity by construction
        let frac = cold.points.len() as f64 / 32f64.powi(3);
        assert!(
            (0.002..0.05).contains(&frac),
            "{}: fraction {frac}",
            derived.name()
        );
    }
}

#[test]
fn filtered_norm_radius_changes_the_answer_and_the_cache_entry() {
    let service = test_service("cat_filter", 32, 1, 2);
    let r1 = DerivedField::BoxFilteredNorm { radius: 1 };
    let r3 = DerivedField::BoxFilteredNorm { radius: 3 };
    let q1 = ThresholdQuery::whole_timestep("velocity", r1, 0, 1.0);
    let q3 = ThresholdQuery::whole_timestep("velocity", r3, 0, 1.0);
    let a1 = service.get_threshold(&q1).unwrap();
    // different radius: its own cache entry, so this must miss
    let a3 = service.get_threshold(&q3).unwrap();
    assert_eq!(a3.cache_hits, 0, "distinct radius must not share entries");
    // a wider filter smooths harder → different (usually smaller) result
    assert_ne!(a1.points.len(), a3.points.len());
    // both re-issue as hits
    assert_eq!(service.get_threshold(&q1).unwrap().cache_hits, 2);
    assert_eq!(service.get_threshold(&q3).unwrap().cache_hits, 2);
}

#[test]
fn channel_flow_threshold_queries_respect_walls() {
    // wall-bounded in y, stretched grid: one-sided stencils at the walls,
    // periodic halo in x/z only
    let config = ServiceConfig {
        dataset: SyntheticDataset::channel(32, 32, 32, 1, 0xc4a),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: scratch_dir("cat_channel"),
    };
    let service = TurbulenceService::build(config).expect("build channel service");
    let stats = service
        .derived_stats("velocity", DerivedField::Norm, 0)
        .unwrap();
    assert!(stats.max > 0.0);
    // velocity norm thresholds: no point can sit on the walls (u = 0 there)
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::Norm, 0, 0.5 * stats.rms);
    let r = service.get_threshold(&q).unwrap();
    assert!(!r.points.is_empty());
    for p in &r.points {
        let (_, y, _) = p.coords();
        assert!(y > 0 && y < 31, "wall point {y} above threshold");
    }
    // vorticity (derivatives incl. one-sided wall stencils) matches a
    // direct evaluation restricted to a couple of spot checks: the
    // distributed answer must at least be internally consistent on re-issue
    let qv = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 1.0);
    let cold = service.get_threshold(&qv).unwrap();
    let warm = service.get_threshold(&qv).unwrap();
    assert_eq!(cold.points.len(), warm.points.len());
    assert_eq!(warm.cache_hits, warm.nodes);
}

#[test]
fn channel_distributed_equals_single_node() {
    let build = |nodes: usize, tag: &str| {
        let config = ServiceConfig {
            dataset: SyntheticDataset::channel(32, 32, 32, 1, 0xc4b),
            cluster: ClusterConfig {
                num_nodes: nodes,
                procs_per_node: 2,
                arrays_per_node: 2,
                chunk_atoms: 2,
                ..ClusterConfig::default()
            },
            limits: Default::default(),
            data_dir: scratch_dir(tag),
        };
        TurbulenceService::build(config).expect("build")
    };
    let answer = |s: &TurbulenceService| {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 2.0)
            .without_cache();
        s.get_threshold(&q)
            .unwrap()
            .points
            .into_iter()
            .map(|p| (p.zindex, p.value))
            .collect::<Vec<_>>()
    };
    let one = answer(&build(1, "cat_ch1"));
    let four = answer(&build(4, "cat_ch4"));
    assert!(!one.is_empty());
    assert_eq!(one, four, "wall stencils must survive distribution");
}
