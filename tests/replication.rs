//! k-way replication consistency: a replicated cluster under node faults
//! answers every threshold/PDF/top-k query *byte-identically* to a
//! healthy unreplicated cluster — the fault seeds that degrade a k=1
//! answer come back complete at k≥2 — and node join/leave rebalancing
//! preserves answers across topology generations.

use std::sync::Arc;

use proptest::prelude::*;
use tdb_cluster::{ClusterConfig, PlacementMode, ReplicationConfig};
use tdb_core::{
    DerivedField, QueryLimits, ServiceConfig, ThresholdPoint, ThresholdQuery, TurbulenceService,
};
use tdb_storage::FaultPlan;
use tdb_turbgen::SyntheticDataset;
use tdb_zorder::Box3;

fn curl_query() -> ThresholdQuery {
    ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0)
}

/// Bit-exact, order-independent view of a threshold answer.
fn point_bits(points: &[ThresholdPoint]) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = points
        .iter()
        .map(|p| (p.zindex, p.value.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// Bit-exact, order-*sensitive* view (top-k answers are ranked).
fn ranked_bits(points: &[ThresholdPoint]) -> Vec<(u64, u32)> {
    points
        .iter()
        .map(|p| (p.zindex, p.value.to_bits()))
        .collect()
}

/// Every query family the mediator assembles, evaluated cold (caches
/// bypassed so the scan path — and any failover — actually runs), plus
/// the degraded flags: the full byte-level answer surface to compare.
#[derive(Debug, PartialEq)]
struct AnswerSurface {
    threshold: Vec<(u64, u32)>,
    threshold_degraded: bool,
    subbox: Vec<(u64, u32)>,
    pdf_counts: Vec<u64>,
    pdf_degraded: bool,
    topk: Vec<(u64, u32)>,
    topk_degraded: bool,
}

fn answer_surface(service: &TurbulenceService) -> AnswerSurface {
    let q = curl_query().without_cache();
    let t = service.get_threshold(&q).expect("threshold answer");
    let mut sub = curl_query().without_cache();
    sub.threshold = 15.0;
    sub.query_box = Some(Box3::new([4, 2, 6], [27, 25, 19]));
    let s = service.get_threshold(&sub).expect("sub-box answer");
    let pq =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0).without_cache();
    let p = service.get_pdf(&pq, 0.0, 5.0, 16).expect("pdf answer");
    let k = service.get_topk(&pq, 20).expect("top-k answer");
    AnswerSurface {
        threshold: point_bits(&t.points),
        threshold_degraded: t.degraded.is_some(),
        subbox: point_bits(&s.points),
        pdf_counts: p.histogram.counts().to_vec(),
        pdf_degraded: p.degraded.is_some(),
        topk: ranked_bits(&k.points),
        topk_degraded: k.degraded.is_some(),
    }
}

/// A service over `nodes` database nodes with the given replication
/// config, optional fault plan, and failure policy.
fn build_replicated(
    tag: &str,
    nodes: usize,
    replication: ReplicationConfig,
    plan: Option<Arc<FaultPlan>>,
    strict: bool,
) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: nodes,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            replication,
            faults: plan,
            ..ClusterConfig::default()
        },
        limits: QueryLimits {
            strict,
            ..Default::default()
        },
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

/// The acceptance scenario: the PR-3 fault seed that produces a
/// `DegradedInfo` partial answer at k=1 comes back *complete* at k=2,
/// byte-identical to an unfaulted single-copy run, across threshold,
/// sub-box threshold, PDF, and top-k queries.
#[test]
fn failover_returns_byte_identical_complete_answers() {
    let plan = FaultPlan::new(FaultPlan::seed_from_env(0x7411)).shared();
    let replicated = build_replicated(
        "repl_failover",
        2,
        ReplicationConfig::k(2),
        Some(Arc::clone(&plan)),
        false,
    );
    let clean = build_replicated(
        "repl_failover_ref",
        2,
        ReplicationConfig::default(),
        None,
        false,
    );
    let reference = answer_surface(&clean);
    assert!(
        !reference.threshold_degraded && !reference.pdf_degraded && !reference.topk_degraded,
        "reference run must be complete"
    );
    // healthy k=2 is already byte-identical to k=1
    assert_eq!(answer_surface(&replicated), reference);

    // kill node 1 — at k=1 this seed degrades the answer (see
    // failure_injection::killed_node_yields_degraded_answer_with_exact_missing_boxes);
    // at k=2 every chunk still has a live replica, so the answer is
    // complete and byte-identical
    let before = replicated.metrics_snapshot();
    plan.set_node_down(1, true);
    replicated.cluster().clear_buffer_pools();
    assert_eq!(answer_surface(&replicated), reference);
    assert!(plan.counts().node_down > 0, "the down node must be probed");

    // process-wide counters are shared across tests: deltas are lower
    // bounds, but this service's failovers alone must register
    let after = replicated.metrics_snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert!(delta("replication.failover.rounds") >= 1);
    assert!(delta("replication.failover.chunks") >= 1);
    assert_eq!(delta("replication.lost_chunks"), 0);

    // reviving the node restores the canonical scatter, still identical
    plan.set_node_down(1, false);
    replicated.cluster().clear_buffer_pools();
    assert_eq!(answer_surface(&replicated), reference);
}

#[test]
fn strict_mode_completes_at_k2_where_k1_fails() {
    let plan = FaultPlan::new(2).shared();
    let strict = build_replicated(
        "repl_strict",
        2,
        ReplicationConfig::k(2),
        Some(Arc::clone(&plan)),
        true,
    );
    let clean = build_replicated(
        "repl_strict_ref",
        2,
        ReplicationConfig::default(),
        None,
        false,
    );
    plan.set_node_down(0, true);
    // failure_injection::strict_mode_fails_loudly_when_a_node_is_down
    // pins the k=1 behaviour for this seed; with a replica the strict
    // query must instead succeed, complete and byte-identical
    let q = curl_query().without_cache();
    let r = strict
        .get_threshold(&q)
        .expect("strict query with replicas");
    assert!(r.degraded.is_none(), "failover must fill the gap");
    let reference = clean.get_threshold(&q).expect("reference");
    assert_eq!(point_bits(&r.points), point_bits(&reference.points));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    /// Random topology (node count, replication factor, placement),
    /// random fault seed and victim, random query mix: the faulted k≥2
    /// cluster answers byte-identically to the healthy k=1 cluster.
    #[test]
    fn prop_faulted_replicated_cluster_matches_healthy(
        nodes in 2usize..=4,
        k in 2usize..=3,
        rendezvous in any::<bool>(),
        seed in 1u64..1000,
        victim in 0usize..4,
        threshold in prop_oneof![Just(15.0f64), Just(25.0), Just(40.0)],
    ) {
        let k = k.min(nodes);
        let victim = victim % nodes;
        let placement = if rendezvous {
            PlacementMode::Rendezvous
        } else {
            PlacementMode::Contiguous
        };
        let replication = ReplicationConfig {
            k,
            placement,
            ..ReplicationConfig::default()
        };
        let tag = format!("repl_prop_{nodes}_{k}_{rendezvous}_{seed}_{victim}");
        let plan = FaultPlan::new(seed).shared();
        let faulted =
            build_replicated(&tag, nodes, replication, Some(Arc::clone(&plan)), false);
        let clean = build_replicated(
            &format!("{tag}_ref"),
            nodes,
            ReplicationConfig::default(),
            None,
            false,
        );
        plan.set_node_down(victim, true);
        faulted.cluster().clear_buffer_pools();

        let mut q = curl_query().without_cache();
        q.threshold = threshold;
        let a = faulted.get_threshold(&q).expect("faulted threshold");
        let b = clean.get_threshold(&q).expect("clean threshold");
        prop_assert!(a.degraded.is_none(), "k>=2 must absorb one dead node");
        prop_assert_eq!(point_bits(&a.points), point_bits(&b.points));

        let pq = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0)
            .without_cache();
        let pa = faulted.get_pdf(&pq, 0.0, 5.0, 16).expect("faulted pdf");
        let pb = clean.get_pdf(&pq, 0.0, 5.0, 16).expect("clean pdf");
        prop_assert!(pa.degraded.is_none());
        prop_assert_eq!(pa.histogram.counts(), pb.histogram.counts());

        let ka = faulted.get_topk(&pq, 12).expect("faulted topk");
        let kb = clean.get_topk(&pq, 12).expect("clean topk");
        prop_assert!(ka.degraded.is_none());
        prop_assert_eq!(ranked_bits(&ka.points), ranked_bits(&kb.points));
    }
}

/// Node join and leave under a live workload: answers before, between
/// and after membership changes stay byte-identical to a fixed healthy
/// reference, movement is bounded to the chunks the new topology
/// actually re-homes, and failover still works on the rebuilt topology.
#[test]
fn rebalance_preserves_answers_across_join_and_leave() {
    let plan = FaultPlan::new(3).shared();
    let replicated = build_replicated(
        "repl_rebalance",
        3,
        ReplicationConfig {
            spare_nodes: 1,
            ..ReplicationConfig::rendezvous(2)
        },
        Some(Arc::clone(&plan)),
        false,
    );
    let clean = build_replicated(
        "repl_rebalance_ref",
        3,
        ReplicationConfig::default(),
        None,
        false,
    );
    let reference = answer_surface(&clean);
    assert_eq!(answer_surface(&replicated), reference);

    let before = replicated.metrics_snapshot();
    let old_layout = replicated.cluster().layout();
    let total_chunks = old_layout.chunks().len();

    // join the pre-racked spare: node 3 appears, answers unchanged
    let report = replicated.cluster().join_node().expect("join");
    assert_eq!(report.node, 3);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.live_nodes, 4);
    let new_layout = replicated.cluster().layout();
    let gained = (0..new_layout.chunks().len())
        .filter(|&c| new_layout.replicas_of_chunk(c).contains(&3))
        .count();
    assert_eq!(
        report.chunks_moved, gained,
        "a join moves exactly the chunks the new node stores"
    );
    assert!(report.chunks_moved > 0);
    assert!(
        report.chunks_moved < total_chunks * 2,
        "movement must be a fraction of all replicas, not a reshuffle"
    );
    assert!(report.atoms_copied > 0);
    assert_eq!(answer_surface(&replicated), reference);

    // retire node 1 mid-workload: survivors absorb its chunks
    let report = replicated.cluster().leave_node(1).expect("leave");
    assert_eq!(report.epoch, 2);
    assert_eq!(report.live_nodes, 3);
    assert!(report.chunks_moved > 0, "the departed node held replicas");
    assert_eq!(answer_surface(&replicated), reference);
    assert_eq!(
        replicated.cluster().live_node_ids(),
        vec![0, 2, 3],
        "node ids are stable across membership changes"
    );

    // a retired node is gone: retiring it again is a typed error
    assert!(replicated.cluster().leave_node(1).is_err());

    // failover still functions on the post-rebalance topology
    plan.set_node_down(2, true);
    replicated.cluster().clear_buffer_pools();
    assert_eq!(answer_surface(&replicated), reference);
    plan.set_node_down(2, false);

    let after = replicated.metrics_snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert!(delta("replication.rebalance.joins") >= 1);
    assert!(delta("replication.rebalance.leaves") >= 1);
    assert!(delta("replication.rebalance.chunks_moved") >= 2);
    assert!(delta("replication.rebalance.atoms_copied") >= 1);
}

/// Guard rails: invalid membership changes are typed errors, not panics
/// or silent misconfigurations.
#[test]
fn rebalance_rejects_invalid_membership_changes() {
    // contiguous placement cannot rebalance
    let contiguous = build_replicated("repl_guard_contig", 2, ReplicationConfig::k(2), None, false);
    assert!(contiguous.cluster().join_node().is_err());
    assert!(contiguous.cluster().leave_node(0).is_err());

    // no spares racked: join refuses; shrinking below k refuses
    let no_spare = build_replicated(
        "repl_guard_spare",
        2,
        ReplicationConfig::rendezvous(2),
        None,
        false,
    );
    assert!(no_spare.cluster().join_node().is_err());
    assert!(
        no_spare.cluster().leave_node(0).is_err(),
        "2 nodes at k=2 cannot lose one"
    );
    assert!(no_spare.cluster().leave_node(7).is_err(), "unknown node");
}
