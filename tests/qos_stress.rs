//! Fleet-scale QoS stress: a thousand-plus simulated connections across
//! mixed tenants hammer the weighted-fair admission queue, and the
//! grant stream honours the configured weights; priority tenants are
//! never shed under an anonymous flood; and with replication enabled,
//! a node death mid-storm drops no admitted answer — every granted
//! query completes byte-identical to the healthy baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier, Mutex};
use std::thread;
use std::time::Duration;

use tdb_cluster::{ClusterConfig, ReplicationConfig};
use tdb_core::{DerivedField, ServiceConfig, ThresholdPoint, ThresholdQuery, TurbulenceService};
use tdb_storage::FaultPlan;
use tdb_turbgen::SyntheticDataset;
use tdb_wire::{Admission, AdmissionConfig, AdmissionQueue, TenantSpec};

static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

fn fresh_conn() -> u64 {
    NEXT_CONN.fetch_add(1, Ordering::Relaxed)
}

/// Admit-with-retry: spins on `Busy` until granted. Returns the number
/// of `Busy` verdicts absorbed along the way.
fn admit_insistently(
    queue: &Arc<AdmissionQueue>,
    conn: u64,
    key: Option<&str>,
) -> (tdb_wire::Permit, u64) {
    let mut sheds = 0;
    loop {
        match queue.admit_keyed(conn, key) {
            Admission::Granted(permit) => return (permit, sheds),
            Admission::Busy { .. } => {
                sheds += 1;
                thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// 48 worker threads — 16 per tenant — push 1296 distinct connections
/// through a single-slot queue. With every tenant continuously
/// backlogged, the steady-state grant stream must split by scheduling
/// weight: the weight-6 tenant takes ~6/8 of grants, each weight-1
/// tenant a visible, non-starved share.
#[test]
fn wfq_shares_hold_under_thousand_connection_storm() {
    let queue = AdmissionQueue::new(AdmissionConfig {
        max_inflight: 1,
        queue_depth: 64,
        busy_retry_ms: 1,
        tenants: vec![
            TenantSpec::new("heavy", 6),
            TenantSpec::new("light_a", 1),
            TenantSpec::new("light_b", 1),
        ],
    });
    let (tx, rx) = mpsc::channel::<&'static str>();
    let mut handles = Vec::new();
    // offered load proportional to weight, so every tenant stays
    // backlogged for the whole run and all three drain together —
    // otherwise the favoured tenant finishes early and the tail of the
    // grant stream underestimates its steady-state share
    for (key, per_thread) in [("heavy", 54), ("light_a", 9), ("light_b", 9)] {
        for _ in 0..16 {
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..per_thread {
                    let (permit, _) = admit_insistently(&queue, fresh_conn(), Some(key));
                    tx.send(key).expect("collector alive");
                    // hold the slot for a simulated query: with zero-cost
                    // work the queue drains between admissions and the
                    // work-conserving immediate path (rightly) bypasses
                    // cross-tenant arbitration — shares only bind under
                    // a standing backlog
                    thread::sleep(Duration::from_micros(150));
                    drop(permit);
                }
            }));
        }
    }
    drop(tx);
    let grants: Vec<&str> = rx.iter().collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(grants.len(), 16 * (54 + 9 + 9));
    assert!(
        grants.len() >= 1000,
        "the storm must span 1000+ connections"
    );

    // measure over the middle of the run, away from ramp-up and drain
    let window = &grants[100..1000];
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for g in window {
        *counts.entry(g).or_default() += 1;
    }
    let share = |key: &str| *counts.get(key).unwrap_or(&0) as f64 / window.len() as f64;
    let heavy = share("heavy");
    assert!(
        (0.45..=0.85).contains(&heavy),
        "weight-6 tenant took {heavy:.2} of saturated grants, expected ~0.75"
    );
    assert!(
        share("light_a") >= 0.03 && share("light_b") >= 0.03,
        "weight-1 tenants must not starve: {:.2} / {:.2}",
        share("light_a"),
        share("light_b")
    );
}

/// An anonymous flood saturates a shallow queue; a premium tenant with
/// a higher shed priority displaces anonymous waiters instead of being
/// turned away. Every one of its 400 connections is admitted; the
/// anonymous class absorbs all the shedding.
#[test]
fn premium_tenant_is_never_shed_under_anonymous_flood() {
    let queue = AdmissionQueue::new(AdmissionConfig {
        max_inflight: 2,
        queue_depth: 8,
        busy_retry_ms: 1,
        tenants: vec![TenantSpec::new("premium", 4).with_shed_priority(5)],
    });
    let anon_shed = Arc::new(AtomicU64::new(0));
    let premium_admitted = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..16 {
        let queue = Arc::clone(&queue);
        let anon_shed = Arc::clone(&anon_shed);
        handles.push(thread::spawn(move || {
            for _ in 0..40 {
                // anonymous traffic gives up after a bounded number of
                // Busy verdicts — a client backing off, not a spinner
                let conn = fresh_conn();
                for _ in 0..200 {
                    match queue.admit(conn) {
                        Admission::Granted(permit) => {
                            thread::sleep(Duration::from_micros(100));
                            drop(permit);
                            break;
                        }
                        Admission::Busy { .. } => {
                            anon_shed.fetch_add(1, Ordering::Relaxed);
                            thread::sleep(Duration::from_micros(100));
                        }
                    }
                }
            }
        }));
    }
    for _ in 0..4 {
        let queue = Arc::clone(&queue);
        let premium_admitted = Arc::clone(&premium_admitted);
        handles.push(thread::spawn(move || {
            for _ in 0..100 {
                // at most 4 premium waiters can coexist in the depth-8
                // queue, so a full queue always holds an anonymous
                // victim: premium must park or run, never shed
                match queue.admit_keyed(fresh_conn(), Some("premium")) {
                    Admission::Granted(permit) => {
                        premium_admitted.fetch_add(1, Ordering::Relaxed);
                        thread::sleep(Duration::from_micros(100));
                        drop(permit);
                    }
                    Admission::Busy { .. } => panic!("premium connection shed"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(premium_admitted.load(Ordering::Relaxed), 400);
    assert!(
        anon_shed.load(Ordering::Relaxed) > 0,
        "the flood must actually saturate the queue"
    );
}

fn point_bits(points: &[ThresholdPoint]) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = points
        .iter()
        .map(|p| (p.zindex, p.value.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// The issue's zero-drop guarantee: a mixed-tenant query storm runs
/// against a k=2 cluster, a node dies halfway through, and every
/// admitted query still returns a complete answer byte-identical to
/// the healthy baseline — replication absorbs the death, admission
/// sheds nothing it accepted.
#[test]
fn node_death_mid_storm_drops_no_admitted_answers() {
    let plan = FaultPlan::new(FaultPlan::seed_from_env(0x7411)).shared();
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            replication: ReplicationConfig::k(2),
            faults: Some(Arc::clone(&plan)),
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: tdb_bench::scratch_dir("qos_storm"),
    };
    let service = Arc::new(TurbulenceService::build(config).expect("build"));
    let thresholds = [15.0, 25.0, 40.0];
    let query = |threshold: f64| {
        let mut q =
            ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, threshold);
        q = q.without_cache();
        q
    };
    // healthy baselines, one per threshold in the mix
    let baselines: Vec<Vec<(u64, u32)>> = thresholds
        .iter()
        .map(|&t| point_bits(&service.get_threshold(&query(t)).expect("baseline").points))
        .collect();

    let queue = AdmissionQueue::new(AdmissionConfig {
        max_inflight: 4,
        queue_depth: 64,
        busy_retry_ms: 1,
        tenants: vec![TenantSpec::new("heavy", 4), TenantSpec::new("light", 1)],
    });
    let workers = 12;
    let rounds = 6; // per worker, per half
    let barrier = Arc::new(Barrier::new(workers + 1));
    let failures = Arc::new(Mutex::new(Vec::<String>::new()));
    let mut handles = Vec::new();
    for w in 0..workers {
        let service = Arc::clone(&service);
        let queue = Arc::clone(&queue);
        let barrier = Arc::clone(&barrier);
        let failures = Arc::clone(&failures);
        let baselines = baselines.clone();
        handles.push(thread::spawn(move || {
            let key = if w % 3 == 0 { "light" } else { "heavy" };
            for half in 0..2 {
                // half 0 runs healthy; the main thread kills node 1
                // between the two rendezvous, before half 1 starts
                barrier.wait();
                barrier.wait();
                for r in 0..rounds {
                    let ti = (w + r + half) % thresholds.len();
                    let (permit, _) = admit_insistently(&queue, fresh_conn(), Some(key));
                    let result = service.get_threshold(&query(thresholds[ti]));
                    drop(permit);
                    let note = match result {
                        Ok(r) if r.degraded.is_some() => {
                            Some(format!("worker {w} half {half}: degraded answer"))
                        }
                        Ok(r) if point_bits(&r.points) != baselines[ti] => {
                            Some(format!("worker {w} half {half}: wrong bytes"))
                        }
                        Ok(_) => None,
                        Err(e) => Some(format!("worker {w} half {half}: {e:?}")),
                    };
                    if let Some(note) = note {
                        failures.lock().expect("collector").push(note);
                    }
                }
            }
        }));
    }
    barrier.wait(); // workers at the half-0 gate
    barrier.wait(); // release half 0 (node still healthy)
    barrier.wait(); // workers done with half 0, parked at the half-1 gate
    plan.set_node_down(1, true);
    service.cluster().clear_buffer_pools();
    barrier.wait(); // release half 1 against the dead node
    for h in handles {
        h.join().expect("worker");
    }
    let failures = failures.lock().expect("collector");
    assert!(
        failures.is_empty(),
        "{} of {} admitted queries dropped or degraded:\n{}",
        failures.len(),
        workers * rounds * 2,
        failures.join("\n")
    );
    assert!(plan.counts().node_down > 0, "the dead node must be probed");
}
