//! The Web-services layer end to end: a real server on a real socket,
//! queried by the client library, answers identical to in-process calls.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tdb_bench::test_service;
use tdb_core::{DerivedField, ThresholdQuery};
use tdb_wire::server::{handle_line, Server, ServerConfig};
use tdb_wire::{Client, Response};

fn start_server(tag: &str) -> (Server, Arc<tdb_core::TurbulenceService>) {
    let service = Arc::new(test_service(tag, 32, 2, 2));
    let server =
        Server::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    (server, service)
}

#[test]
fn wire_answers_match_in_process_answers() {
    let (server, service) = start_server("wire_match");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("ping");

    let info = client.info().expect("info");
    assert_eq!(info.dims, (32, 32, 32));
    assert_eq!(info.timesteps, 2);
    assert!(info.fields.iter().any(|(n, c)| n == "velocity" && *c == 3));

    let (_, _, rms, _, max) = client
        .get_stats("velocity", DerivedField::CurlNorm, 0)
        .expect("stats");
    assert!(max > rms);
    let threshold = 3.0 * rms;

    let wire = client
        .get_threshold("velocity", DerivedField::CurlNorm, 0, None, threshold)
        .expect("threshold");
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, threshold);
    let local = service.get_threshold(&q).expect("local");
    // first wire query warmed the cache; the local call hits it — answers
    // must be identical either way
    assert_eq!(wire.points.len(), local.points.len());
    for (a, b) in wire.points.iter().zip(&local.points) {
        assert_eq!(a.zindex, b.zindex);
        assert!((a.value - b.value).abs() < 1e-6);
    }

    let pdf = client
        .get_pdf("velocity", DerivedField::CurlNorm, 0, 0.0, 10.0, 9)
        .expect("pdf");
    assert_eq!(pdf.iter().sum::<u64>(), 32 * 32 * 32);

    let top = client
        .get_topk("velocity", DerivedField::CurlNorm, 0, 5)
        .expect("topk");
    assert_eq!(top.len(), 5);
    assert!(top.windows(2).all(|w| w[0].value >= w[1].value));

    // point interpolation over the wire matches the in-process answer
    let positions = [[3.5, 4.25, 5.0], [31.0, 0.0, 16.5]];
    let wire_vals = client
        .get_points("velocity", 0, 6, &positions)
        .expect("points");
    let (local_vals, _) = service
        .interpolate_at("velocity", 0, &positions, tdb_core::LagOrder::Lag6)
        .expect("local points");
    assert_eq!(wire_vals.len(), 2);
    for (w, l) in wire_vals.iter().zip(&local_vals) {
        for c in 0..3 {
            assert!((w[c] - l[c]).abs() < 1e-4);
        }
    }
    // invalid lag width is a clean server error
    let err = client
        .get_points("velocity", 0, 5, &positions)
        .expect_err("lag 5 invalid");
    assert!(err.to_string().contains("lag_width"));
    drop(client);
    server.stop();
}

#[test]
fn multiple_concurrent_clients() {
    let (server, _service) = start_server("wire_multi");
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.ping().expect("ping");
                let t = 25.0 + i as f64;
                let a = c
                    .get_threshold("velocity", DerivedField::CurlNorm, 0, None, t)
                    .expect("threshold");
                a.points.len()
            })
        })
        .collect();
    let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // monotone thresholds → monotone (non-increasing) result sizes
    assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
    server.stop();
}

#[test]
fn server_reports_query_errors_cleanly() {
    let (server, _service) = start_server("wire_errors");
    let mut client = Client::connect(server.addr()).expect("connect");
    // unknown field flows back as a server error, connection stays usable
    let err = client
        .get_threshold("nonexistent", DerivedField::Norm, 0, None, 1.0)
        .expect_err("must fail");
    assert!(err.to_string().contains("unknown raw field"));
    client.ping().expect("connection survives an error");
    // bad timestep
    let err = client
        .get_pdf("velocity", DerivedField::Norm, 99, 0.0, 1.0, 4)
        .expect_err("must fail");
    assert!(err.to_string().contains("out of range"));
    server.stop();
}

#[test]
fn batch_jobs_and_mydb_over_the_wire() {
    let (server, _service) = start_server("wire_batch");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (_, _, rms, _, _) = client
        .get_stats("velocity", DerivedField::CurlNorm, 0)
        .expect("stats");
    let job = client
        .submit_job("velocity", DerivedField::CurlNorm, 0, 3.0 * rms, "wired")
        .expect("submit");
    // poll to completion
    let mut state = String::new();
    let mut rows = 0;
    for _ in 0..200 {
        let (s, _, r) = client.job_status(job).expect("status");
        state = s;
        rows = r;
        if state == "done" || state == "failed" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(state, "done");
    assert!(rows > 0);
    // the table is readable through MyDB
    assert!(client
        .list_mydb()
        .expect("list")
        .contains(&"wired".to_string()));
    let (prov, points) = client.get_mydb_table("wired").expect("table");
    assert!(prov.contains("curl_norm"));
    assert_eq!(points.len() as u64, rows);
    // identical to an interactive query
    let direct = client
        .get_threshold("velocity", DerivedField::CurlNorm, 0, None, 3.0 * rms)
        .expect("direct");
    assert_eq!(direct.points.len(), points.len());
    // failure path: bogus field
    let bad = client
        .submit_job("bogus", DerivedField::Norm, 0, 1.0, "never")
        .expect("submit accepts; job fails");
    for _ in 0..200 {
        let (s, detail, _) = client.job_status(bad).expect("status");
        if s == "failed" {
            assert!(detail.contains("unknown raw field"));
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(client.job_status(9999).is_err(), "unknown job id errors");
    server.stop();
}

#[test]
fn oversized_requests_are_rejected_and_the_connection_closed() {
    let service = Arc::new(test_service("wire_oversize", 32, 1, 2));
    let config = ServerConfig {
        max_request_bytes: 256,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
    let before = service.metrics_snapshot();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let big = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(1024));
    stream.write_all(big.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("error response");
    assert!(
        line.contains("error") && line.contains("byte limit"),
        "unexpected response: {line}"
    );
    // the rest of the oversized line was never read, so the server closes
    line.clear();
    let n = reader.read_line(&mut line).expect("clean EOF");
    assert_eq!(n, 0, "connection must be closed after an oversized request");
    assert!(
        service.metrics_snapshot().counter("wire.request.oversized")
            > before.counter("wire.request.oversized")
    );
    server.stop();
}

#[test]
fn idle_connections_time_out_and_close() {
    let service = Arc::new(test_service("wire_idle", 32, 1, 2));
    let config = ServerConfig {
        read_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
    let before = service.metrics_snapshot();
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // send nothing: the server must hang up on its own
    let n = reader.read_line(&mut line).expect("server closes cleanly");
    assert_eq!(n, 0, "expected EOF after the server-side idle timeout");
    assert!(
        service
            .metrics_snapshot()
            .counter("wire.connection.timeout")
            > before.counter("wire.connection.timeout")
    );
    server.stop();
}

#[test]
fn degraded_status_travels_the_wire() {
    let plan = tdb_storage::FaultPlan::new(3).shared();
    let config = tdb_core::ServiceConfig {
        dataset: tdb_turbgen::SyntheticDataset::mhd(32, 1, 0x7db),
        cluster: tdb_cluster::ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            faults: Some(Arc::clone(&plan)),
            ..tdb_cluster::ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: tdb_bench::scratch_dir("wire_degraded"),
    };
    let service = Arc::new(tdb_core::TurbulenceService::build(config).expect("build"));
    let server =
        Server::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    plan.set_node_down(1, true);
    let a = client
        .get_threshold("velocity", DerivedField::CurlNorm, 0, None, 25.0)
        .expect("degraded answer must still arrive");
    let d = a
        .degraded
        .expect("degraded flag must survive serialization");
    assert_eq!(d.failed_nodes.len(), 1);
    assert_eq!(d.failed_nodes[0].node, 1);
    assert!(!d.missing_boxes.is_empty());

    // revived node → clean answers again, same connection
    plan.set_node_down(1, false);
    let b = client
        .get_threshold("velocity", DerivedField::CurlNorm, 0, None, 25.0)
        .expect("clean answer");
    assert!(b.degraded.is_none());
    assert!(b.points.len() >= a.points.len());
    server.stop();
}

#[test]
fn malformed_lines_get_error_responses() {
    let service = test_service("wire_malformed", 32, 1, 2);
    for bad in [
        "not json at all",
        "{\"op\":\"launch_missiles\"}",
        "{\"op\":\"get_threshold\"}",
        "{\"op\":\"get_pdf\",\"field\":\"velocity\",\"derived\":\"norm\",\"timestep\":0,\"origin\":0,\"bin_width\":-1,\"nbins\":4}",
        "{\"op\":\"get_topk\",\"field\":\"velocity\",\"derived\":\"norm\",\"timestep\":0,\"k\":0}",
    ] {
        match handle_line(bad, &service) {
            Response::Error { .. } => {}
            other => panic!("{bad} should produce an error, got {other:?}"),
        }
    }
    // and a well-formed line still works on the same handler
    match handle_line("{\"op\":\"ping\"}", &service) {
        Response::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }
}
