//! Component models under the `tdb-check` schedule-exploration checker.
//!
//! Four concurrency-critical components get a closed model each: the
//! scan-scheduler batch close, the mediator's failover-vs-rebalance lock
//! discipline, the admission queue's WFQ grant/evict/shed protocol (real
//! code), and the buffer pool's eviction-vs-decode path (real code).
//! Where this PR fixed a real bug — the scan-scheduler batch overshoot —
//! the *buggy* variant rides along as a regression model the checker
//! must still catch.
//!
//! Closed models use `wait_for(..).timed_out()` with bounded retries as
//! their loop exits: under the checker a timed wait is virtual time (the
//! scheduler may fire the timeout at any point), so models terminate
//! without wall-clock dependence.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use tdb_check::{thread, FailureKind, Model};
use tdb_storage::bufferpool::BlockKey;
use tdb_storage::{BufferPool, IoSession};
use tdb_wire::admission::{Admission, AdmissionConfig, AdmissionQueue, TenantSpec};

// ---------------------------------------------------------------------
// 1. ScanScheduler: leader/joiner batch close
// ---------------------------------------------------------------------

/// Closed model of `tdb_cluster::scheduler::ScanScheduler::submit` for a
/// single scan-group key: the batch is `Some(entries)` while open, the
/// leader closes it by `take`-ing it. Mirrors the fixed protocol —
/// joiners check fullness before pushing and wait for the close, the
/// leader notifies on close.
struct BatchModel {
    open: Mutex<Option<Vec<usize>>>,
    joined: Condvar,
    ran: Mutex<Vec<Vec<usize>>>,
}

impl BatchModel {
    fn new() -> Self {
        Self {
            open: Mutex::new(None),
            joined: Condvar::new(),
            ran: Mutex::new(Vec::new()),
        }
    }

    fn submit(&self, me: usize, max_batch: usize, overshoot_bug: bool) {
        let leader = {
            let mut open = self.open.lock();
            loop {
                match open.as_mut() {
                    Some(batch) if overshoot_bug || batch.len() < max_batch => {
                        batch.push(me);
                        self.joined.notify_all();
                        break false;
                    }
                    Some(_) => self.joined.wait(&mut open),
                    None => {
                        *open = Some(vec![me]);
                        break true;
                    }
                }
            }
        };
        if leader {
            let mut open = self.open.lock();
            // the coalescing window: bounded timed waits stand in for the
            // Instant deadline of the real scheduler
            let mut rounds = 0;
            while open.as_ref().map_or(0, |b| b.len()) < max_batch {
                if self
                    .joined
                    .wait_for(&mut open, Duration::from_millis(1))
                    .timed_out()
                {
                    rounds += 1;
                    if rounds > 2 {
                        break;
                    }
                }
            }
            let batch = open.take().expect("batch vanished under its leader");
            self.joined.notify_all();
            drop(open);
            assert!(
                batch.len() <= max_batch,
                "batch of {} overshot max_batch={max_batch}",
                batch.len()
            );
            self.ran.lock().push(batch);
        }
    }
}

fn batch_close_model(overshoot_bug: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let m = Arc::new(BatchModel::new());
        let handles: Vec<_> = (1..3)
            .map(|id| {
                let m2 = Arc::clone(&m);
                thread::spawn(move || m2.submit(id, 2, overshoot_bug))
            })
            .collect();
        m.submit(0, 2, overshoot_bug);
        for h in handles {
            h.join();
        }
        // every submitter ran in exactly one closed batch
        let mut served: Vec<usize> = m.ran.lock().iter().flatten().copied().collect();
        served.sort_unstable();
        assert_eq!(served, [0, 1, 2], "submitters lost or double-served");
    }
}

#[test]
fn scan_scheduler_batch_close_passes() {
    let report = Model::new("scheduler: batch close")
        .budget(4096)
        .check_quiet(batch_close_model(false));
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Regression: the pre-fix joiner pushed without checking fullness, so a
/// burst could overshoot `max_batch` while the leader slept. The checker
/// must find that interleaving.
#[test]
fn scan_scheduler_overshoot_regression_is_caught() {
    let report = Model::new("scheduler: overshoot regression")
        .budget(4096)
        .check_quiet(batch_close_model(true));
    let failure = report.failure.expect("checker must catch the overshoot");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure:?}");
    assert!(
        failure.message.contains("overshot max_batch"),
        "{failure:?}"
    );
}

// ---------------------------------------------------------------------
// 2. Mediator: failover re-scatter vs topology generation swap
// ---------------------------------------------------------------------

/// Closed model of the mediator's lock discipline: both mutators (the
/// rebalancer and dead-node failover) take the `rebalance` planning lock
/// *before* the `topology` write lock, and the query path only ever
/// holds the topology read lock. Epochs observed by a re-scattering
/// query must be monotone.
fn failover_vs_swap_model() {
    let rebalance = Arc::new(Mutex::new(()));
    let topology = Arc::new(RwLock::new(1u64));

    let (r2, t2) = (Arc::clone(&rebalance), Arc::clone(&topology));
    let rebalancer = thread::spawn(move || {
        let _plan = r2.lock();
        *t2.write() += 1;
    });
    let (r3, t3) = (Arc::clone(&rebalance), Arc::clone(&topology));
    let failover = thread::spawn(move || {
        let _plan = r3.lock();
        *t3.write() += 1;
    });

    // the query path: scatter against a snapshot, lose a node, re-read
    // the topology for the re-scatter
    let first = *topology.read();
    let retry = *topology.read();
    assert!(retry >= first, "topology generation went backwards");

    rebalancer.join();
    failover.join();
    assert_eq!(*topology.read(), 3, "a swap was lost");
}

#[test]
fn mediator_failover_vs_topology_swap_passes() {
    let report = Model::new("mediator: failover vs topology swap")
        .budget(4096)
        .check_quiet(failover_vs_swap_model);
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Regression guard for the discipline itself: inverting the order in
/// one path (topology write held while acquiring the planning lock) is
/// an ABBA deadlock the checker must find.
#[test]
fn mediator_inverted_lock_order_is_caught() {
    let report = Model::new("mediator: inverted lock order").check_quiet(|| {
        let rebalance = Arc::new(Mutex::new(()));
        let topology = Arc::new(RwLock::new(1u64));
        let (r2, t2) = (Arc::clone(&rebalance), Arc::clone(&topology));
        let admin = thread::spawn(move || {
            let _plan = r2.lock();
            *t2.write() += 1;
        });
        let epoch = topology.write();
        let _plan = rebalance.lock();
        drop(epoch);
        admin.join();
    });
    let failure = report.failure.expect("checker must catch the ABBA order");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure:?}");
}

// ---------------------------------------------------------------------
// 3. AdmissionQueue: WFQ grant / evict / shed (real code)
// ---------------------------------------------------------------------

/// The real `AdmissionQueue` under the checker: one slot, one queue
/// seat, an anonymous and a premium arrival racing a release. In every
/// interleaving the premium tenant must end up granted (it can evict the
/// anonymous waiter and nobody outranks it), no waiter may be lost, and
/// all threads must terminate — this exercises the granted-set handoff
/// and the notify-after-unlock protocol in `release`.
#[test]
fn admission_wfq_grant_evict_shed_passes() {
    let report = Model::new("admission: WFQ grant/evict/shed")
        .budget(4096)
        .check_quiet(|| {
            let q = AdmissionQueue::new(AdmissionConfig {
                max_inflight: 1,
                queue_depth: 1,
                busy_retry_ms: 1,
                tenants: vec![TenantSpec::new("premium", 2).with_shed_priority(5)],
            });
            let Admission::Granted(held) = q.admit(0) else {
                panic!("first query must take the free slot");
            };
            let q2 = Arc::clone(&q);
            let anon = thread::spawn(move || match q2.admit(1) {
                Admission::Granted(p) => {
                    drop(p);
                    true
                }
                Admission::Busy { .. } => false,
            });
            let q3 = Arc::clone(&q);
            let premium = thread::spawn(move || match q3.admit_keyed(2, Some("premium")) {
                Admission::Granted(p) => {
                    drop(p);
                    true
                }
                Admission::Busy { .. } => false,
            });
            drop(held);
            let _anon_granted = anon.join();
            let premium_granted = premium.join();
            assert!(premium_granted, "premium arrival must never be shed here");
        });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

// ---------------------------------------------------------------------
// 4. BufferPool: eviction vs concurrent decode (real code)
// ---------------------------------------------------------------------

/// The real `BufferPool` under the checker, sized so concurrent misses
/// force evictions while another thread decodes. Decoded bytes must be
/// identical whether they came from a hit or a (re)load, and the byte
/// budget must hold at quiescence.
#[test]
fn bufferpool_eviction_vs_decode_passes() {
    fn key(i: u32) -> BlockKey {
        BlockKey {
            file_id: 1,
            block_no: i,
        }
    }
    fn block(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 10])
    }
    let report = Model::new("bufferpool: eviction vs decode")
        .budget(4096)
        .check_quiet(|| {
            let pool: Arc<BufferPool> = Arc::new(BufferPool::new(25));
            let p2 = Arc::clone(&pool);
            let t = thread::spawn(move || {
                let mut s = IoSession::new();
                for tag in [1u8, 2] {
                    let got = p2
                        .get_or_load(key(tag as u32), &mut s, |_| Ok(block(tag)))
                        .expect("in-memory load cannot fail");
                    assert_eq!(got, block(tag), "decode returned wrong bytes");
                }
            });
            let mut s = IoSession::new();
            for tag in [3u8, 1] {
                let got = pool
                    .get_or_load(key(tag as u32), &mut s, |_| Ok(block(tag)))
                    .expect("in-memory load cannot fail");
                assert_eq!(got, block(tag), "hit returned different bytes than load");
            }
            t.join();
            let (used, len) = (pool.used_bytes(), pool.len());
            assert!(
                used <= 25 || len == 1,
                "byte budget violated: {used} bytes in {len} blocks"
            );
        });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
