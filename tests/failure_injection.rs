//! Fault tolerance of the query path: corrupted partition blocks are
//! detected by the CRC and surfaced as query errors — never as silent
//! wrong answers or crashes; injected transient faults are retried away;
//! corrupted cache entries self-heal; a dead node degrades the answer
//! instead of failing it (unless strict mode asks otherwise).

use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;

use tdb_cluster::ClusterConfig;
use tdb_core::{
    DerivedField, QueryError, QueryLimits, ServiceConfig, ThresholdPoint, ThresholdQuery,
    TurbulenceService,
};
use tdb_storage::{FaultPlan, FaultRule};
use tdb_turbgen::SyntheticDataset;
use tdb_zorder::Box3;

fn build(tag: &str) -> (TurbulenceService, std::path::PathBuf) {
    let dir = tdb_bench::scratch_dir(tag);
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: dir.clone(),
    };
    (TurbulenceService::build(config).expect("build"), dir)
}

/// Flips one byte in the middle of a data block of every velocity
/// partition of node 0.
fn corrupt_velocity_partitions(dir: &std::path::Path) -> usize {
    let node_dir = dir.join("node0");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&node_dir).expect("node dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("velocity_part") {
            continue;
        }
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open partition");
        let len = f.metadata().unwrap().len();
        // flip a byte well inside the first data block (after the header,
        // before the footer)
        let pos = (len / 4).clamp(16, len - 64);
        f.seek(SeekFrom::Start(pos)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(pos)).unwrap();
        f.write_all(&[b[0] ^ 0xa5]).unwrap();
        f.sync_all().unwrap();
        corrupted += 1;
    }
    corrupted
}

#[test]
fn corrupted_block_fails_the_query_loudly() {
    let (service, dir) = build("fi_corrupt");
    // sanity: the query works before corruption
    let q =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0).without_cache();
    let ok = service.get_threshold(&q).expect("pre-corruption query");
    assert!(!ok.points.is_empty());

    assert!(corrupt_velocity_partitions(&dir) > 0, "no partitions found");
    service.cluster().clear_buffer_pools(); // force re-reads from disk

    match service.get_threshold(&q) {
        Err(QueryError::Backend(msg)) => {
            assert!(
                msg.contains("corrupt") || msg.contains("crc"),
                "unexpected backend message: {msg}"
            );
        }
        Ok(_) => panic!("corrupted data must not produce an answer"),
        Err(other) => panic!("expected Backend error, got {other:?}"),
    }
}

#[test]
fn corruption_in_one_field_leaves_others_usable() {
    let (service, dir) = build("fi_isolated");
    corrupt_velocity_partitions(&dir);
    service.cluster().clear_buffer_pools();
    // magnetic-field queries never touch the corrupted velocity partitions
    let q = ThresholdQuery::whole_timestep("magnetic", DerivedField::Norm, 0, 2.0).without_cache();
    let r = service
        .get_threshold(&q)
        .expect("unrelated field must work");
    assert!(!r.points.is_empty());
}

/// Same shape as [`build`] but with a fault plan and failure policy.
fn build_faulted(tag: &str, plan: Option<Arc<FaultPlan>>, strict: bool) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            faults: plan,
            ..ClusterConfig::default()
        },
        limits: QueryLimits {
            strict,
            ..Default::default()
        },
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

/// Bit-exact, order-independent view of a threshold answer.
fn point_bits(points: &[ThresholdPoint]) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = points
        .iter()
        .map(|p| (p.zindex, p.value.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// The fault-free answer restricted to points outside `missing` — what a
/// degraded answer must equal bit for bit.
fn surviving_bits(reference: &[ThresholdPoint], missing: &[Box3]) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = reference
        .iter()
        .filter(|p| {
            let (x, y, z) = p.coords();
            !missing.iter().any(|b| b.contains_point(x, y, z))
        })
        .map(|p| (p.zindex, p.value.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn curl_query() -> ThresholdQuery {
    ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0)
}

#[test]
fn transient_read_faults_retry_to_a_byte_identical_answer() {
    // the 32³ test archive only loads a handful of blocks, so a realistic
    // 1% rate would often fire zero faults; 25% guarantees exercise while
    // the fixed seed keeps every attempt sequence short of exhaustion
    let plan = FaultPlan::new(0x5eed)
        .with_rule(FaultRule::transient_reads(0.25))
        .shared();
    let faulted = build_faulted("fi_transient", Some(Arc::clone(&plan)), false);
    let (clean, _dir) = build("fi_transient_ref");
    // bulk load leaves the blocks in the pool; faults only fire on the
    // disk-load path, so make the query cold
    faulted.cluster().clear_buffer_pools();
    let q = curl_query().without_cache();
    let a = faulted
        .get_threshold(&q)
        .expect("retries must absorb transient faults");
    let b = clean.get_threshold(&q).expect("clean reference");
    assert_eq!(point_bits(&a.points), point_bits(&b.points));
    assert!(a.degraded.is_none());
    let counts = plan.counts();
    assert!(
        counts.transient > 0,
        "seed 0x5eed must fire at least one transient fault"
    );
}

#[test]
fn corrupted_cache_entry_is_quarantined_and_self_heals() {
    let (service, _dir) = build("fi_heal");
    let q = curl_query();
    let cold = service.get_threshold(&q).expect("cold scan");
    let warm = service.get_threshold(&q).expect("warm hit");
    assert_eq!(warm.cache_hits, warm.nodes, "cache should be warm");

    let corrupted = service
        .cluster()
        .corrupt_cache_entry("velocity", DerivedField::CurlNorm, 0);
    assert!(corrupted > 0, "no cached entries to corrupt");
    service.cluster().clear_buffer_pools();

    // the poisoned entry must not answer: it is quarantined and the node
    // recomputes from raw atoms, bit-identical to the original cold scan
    let healed = service.get_threshold(&q).expect("healing query");
    assert_eq!(healed.cache_hits, 0, "a quarantined entry must not answer");
    assert_eq!(point_bits(&healed.points), point_bits(&cold.points));
    assert!(service.cluster().cache_stats().quarantined >= corrupted as u64);

    // the recomputation rebuilt the entry: hits serve again, still identical
    let rewarm = service.get_threshold(&q).expect("rebuilt entry");
    assert_eq!(rewarm.cache_hits, rewarm.nodes, "healed entry must serve");
    assert_eq!(point_bits(&rewarm.points), point_bits(&cold.points));
}

#[test]
fn killed_node_yields_degraded_answer_with_exact_missing_boxes() {
    let plan = FaultPlan::new(1).shared();
    let faulted = build_faulted("fi_down", Some(Arc::clone(&plan)), false);
    let (clean, _dir) = build("fi_down_ref");
    let q = curl_query().without_cache();
    let full = clean.get_threshold(&q).expect("reference");

    plan.set_node_down(1, true);
    let r = faulted.get_threshold(&q).expect("must degrade, not fail");
    let degraded = r.degraded.expect("partial answer must be flagged");
    assert_eq!(degraded.failed_nodes.len(), 1);
    assert_eq!(degraded.failed_nodes[0].node, 1);
    assert!(degraded.failed_nodes[0].reason.contains("unavailable"));

    // missing boxes are exactly the killed node's chunks ∩ the query box
    let query_box = faulted.full_box();
    let expected: Vec<Box3> = faulted
        .cluster()
        .layout()
        .chunks_of_node(1)
        .iter()
        .filter_map(|c| c.grid_box().intersect(&query_box))
        .collect();
    assert!(!expected.is_empty());
    assert_eq!(degraded.missing_boxes, expected);

    // surviving points are the fault-free answer outside those boxes
    assert_eq!(
        point_bits(&r.points),
        surviving_bits(&full.points, &degraded.missing_boxes)
    );
    assert!(plan.counts().node_down > 0);

    // reviving the node restores the full answer
    plan.set_node_down(1, false);
    let back = faulted.get_threshold(&q).expect("revived");
    assert!(back.degraded.is_none());
    assert_eq!(point_bits(&back.points), point_bits(&full.points));
}

#[test]
fn strict_mode_fails_loudly_when_a_node_is_down() {
    let plan = FaultPlan::new(2).shared();
    let service = build_faulted("fi_strict", Some(Arc::clone(&plan)), true);
    plan.set_node_down(0, true);
    let q = curl_query().without_cache();
    match service.get_threshold(&q) {
        Err(QueryError::Backend(msg)) => {
            assert!(msg.contains("unavailable"), "unexpected message: {msg}");
        }
        Ok(_) => panic!("strict mode must not return a partial answer"),
        Err(other) => panic!("expected Backend error, got {other:?}"),
    }
}

/// The issue's acceptance scenario end to end: 1% transient block reads, a
/// corrupted cached entry, and a killed node — and the full-box query still
/// completes, byte-identical outside the dead node's boxes, with matching
/// process-wide counters.
#[test]
fn combined_faults_still_complete_a_full_box_query() {
    let seed = FaultPlan::seed_from_env(0x7411);
    let plan = FaultPlan::new(seed)
        .with_rule(FaultRule::transient_reads(0.01))
        .shared();
    let faulted = build_faulted("fi_combined", Some(Arc::clone(&plan)), false);
    let (clean, _dir) = build("fi_combined_ref");
    let q = curl_query();
    let reference = clean.get_threshold(&q).expect("clean reference");
    let before = faulted.metrics_snapshot();

    // warm the cache under transient read faults: already byte-identical
    faulted.cluster().clear_buffer_pools();
    let warm = faulted
        .get_threshold(&q)
        .expect("warm under transient faults");
    assert_eq!(point_bits(&warm.points), point_bits(&reference.points));

    // poison the cache, kill a node, drop the buffer pools
    let corrupted = faulted
        .cluster()
        .corrupt_cache_entry("velocity", DerivedField::CurlNorm, 0);
    assert!(corrupted > 0);
    plan.set_node_down(1, true);
    faulted.cluster().clear_buffer_pools();

    let r = faulted
        .get_threshold(&q)
        .expect("query must complete despite all three fault kinds");
    let degraded = r.degraded.expect("killed node must be reported");
    assert_eq!(degraded.failed_nodes.len(), 1);
    assert_eq!(degraded.failed_nodes[0].node, 1);
    // the surviving node healed its cache entry from raw atoms: the answer
    // is the fault-free one restricted to the live node's boxes
    assert_eq!(
        point_bits(&r.points),
        surviving_bits(&reference.points, &degraded.missing_boxes)
    );

    // the process-wide registry saw at least this plan's faults (other
    // tests share the registry, so deltas are lower bounds)
    let after = faulted.metrics_snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    let counts = plan.counts();
    assert!(counts.node_down >= 1);
    assert!(delta("faults.injected.node_down") >= counts.node_down);
    assert!(delta("faults.injected.transient") >= counts.transient);
    assert!(delta("cache.semantic.quarantined") >= 1);
    assert!(delta("cache.semantic.rebuilt") >= 1);
    assert!(delta("query.degraded") >= 1);
    if counts.transient > 0 {
        assert!(delta("storage.read.retries") >= counts.transient);
    }
}

/// Same shape as [`build_faulted`] but with a storage codec.
fn build_codec(
    tag: &str,
    codec: tdb_cluster::CompressionConfig,
    plan: Option<Arc<FaultPlan>>,
) -> (TurbulenceService, std::path::PathBuf) {
    let dir = tdb_bench::scratch_dir(tag);
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            compression: codec,
            faults: plan,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: dir.clone(),
    };
    (TurbulenceService::build(config).expect("build"), dir)
}

#[test]
fn lossy_tier_under_transient_faults_stays_within_bound() {
    // transient read faults retry over *compressed* blocks too, and the
    // decoded samples a cutout returns still honour the codec's bound
    // against the uncompressed archive
    let bound = 1e-2;
    let plan = FaultPlan::new(0x5eed)
        .with_rule(FaultRule::transient_reads(0.25))
        .shared();
    let (lossy, _dir) = build_codec(
        "fi_lossy",
        tdb_cluster::CompressionConfig::lossy(2, bound),
        Some(Arc::clone(&plan)),
    );
    let (clean, _dir) = build("fi_lossy_ref");
    lossy.cluster().clear_buffer_pools();
    let full = lossy.full_box();
    let (a, _) = lossy
        .get_cutout("velocity", 0, &full)
        .expect("lossy cutout");
    let (b, _) = clean
        .get_cutout("velocity", 0, &full)
        .expect("clean cutout");
    for c in 0..3 {
        for (x, y) in a.comp(c).as_slice().iter().zip(b.comp(c).as_slice()) {
            assert!(
                (f64::from(*x) - f64::from(*y)).abs() <= bound,
                "decoded {x} vs original {y} breaks the {bound} bound"
            );
        }
    }
    assert!(
        plan.counts().transient > 0,
        "seed 0x5eed must fire at least one transient fault"
    );
}

#[test]
fn corrupted_compressed_partition_fails_loudly() {
    // CRC protection covers compressed partitions identically: a flipped
    // byte is a loud backend error, never a silently wrong decode
    let (service, dir) = build_codec(
        "fi_comp_corrupt",
        tdb_cluster::CompressionConfig::lossless(),
        None,
    );
    let q = curl_query().without_cache();
    service.get_threshold(&q).expect("pre-corruption query");
    assert!(corrupt_velocity_partitions(&dir) > 0, "no partitions found");
    service.cluster().clear_buffer_pools();
    match service.get_threshold(&q) {
        Err(QueryError::Backend(msg)) => {
            assert!(
                msg.contains("corrupt") || msg.contains("crc"),
                "unexpected backend message: {msg}"
            );
        }
        Ok(_) => panic!("corrupted compressed data must not produce an answer"),
        Err(other) => panic!("expected Backend error, got {other:?}"),
    }
}

#[test]
fn quarantined_cache_entry_heals_identically_over_compressed_tier() {
    // the self-heal path recomputes from *decoded* atoms; decode is
    // deterministic, so the rebuilt entry is byte-identical to the
    // original cold scan even under a lossy codec
    let (service, _dir) = build_codec(
        "fi_comp_heal",
        tdb_cluster::CompressionConfig::lossy(2, 1e-2),
        None,
    );
    let q = curl_query();
    let cold = service.get_threshold(&q).expect("cold scan");
    let warm = service.get_threshold(&q).expect("warm hit");
    assert_eq!(warm.cache_hits, warm.nodes, "cache should be warm");

    let corrupted = service
        .cluster()
        .corrupt_cache_entry("velocity", DerivedField::CurlNorm, 0);
    assert!(corrupted > 0, "no cached entries to corrupt");
    service.cluster().clear_buffer_pools();

    let healed = service.get_threshold(&q).expect("healing query");
    assert_eq!(healed.cache_hits, 0, "a quarantined entry must not answer");
    assert_eq!(point_bits(&healed.points), point_bits(&cold.points));

    let rewarm = service.get_threshold(&q).expect("rebuilt entry");
    assert_eq!(rewarm.cache_hits, rewarm.nodes, "healed entry must serve");
    assert_eq!(point_bits(&rewarm.points), point_bits(&cold.points));
}

#[test]
fn cached_results_survive_storage_corruption() {
    // the semantic cache holds *results*, so a warm entry keeps answering
    // even when the raw data underneath has rotted — and the paper's
    // recovery path (re-evaluating at a lower threshold) fails loudly.
    let (service, dir) = build("fi_cache");
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0);
    let cold = service.get_threshold(&q).expect("warm the cache");
    corrupt_velocity_partitions(&dir);
    service.cluster().clear_buffer_pools();
    let warm = service
        .get_threshold(&q)
        .expect("cache hit needs no raw data");
    assert_eq!(warm.cache_hits, warm.nodes);
    assert_eq!(warm.points.len(), cold.points.len());
    // a lower threshold forces re-evaluation from (corrupt) raw data
    let lower = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 20.0);
    assert!(matches!(
        service.get_threshold(&lower),
        Err(QueryError::Backend(_))
    ));
}

/// Same shape as [`build_codec`] but replicated, with a failure policy.
fn build_replicated_codec(
    tag: &str,
    codec: tdb_cluster::CompressionConfig,
    plan: Option<Arc<FaultPlan>>,
    limits: QueryLimits,
) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            compression: codec,
            replication: tdb_cluster::ReplicationConfig::k(2),
            faults: plan,
            ..ClusterConfig::default()
        },
        limits,
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}

/// A replica node dies and revives *while a scan workload is running*
/// over the lossless compressed tier: whether a query sees the outage
/// at scatter time or mid-scan, every answer stays complete and
/// byte-identical (lossless decode is deterministic).
#[test]
fn kill_replica_mid_scan_completes_over_compressed_tier() {
    let plan = FaultPlan::new(FaultPlan::seed_from_env(0x7411)).shared();
    let service = build_replicated_codec(
        "fi_midscan",
        tdb_cluster::CompressionConfig::lossless(),
        Some(Arc::clone(&plan)),
        Default::default(),
    );
    let (clean, _dir) = build_codec(
        "fi_midscan_ref",
        tdb_cluster::CompressionConfig::lossless(),
        None,
    );
    let q = curl_query().without_cache();
    let reference = point_bits(&clean.get_threshold(&q).expect("reference").points);

    let toggler_plan = Arc::clone(&plan);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    // only node 1 flaps, so some replica is always live for every chunk
    let toggler = std::thread::spawn(move || {
        while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
            toggler_plan.set_node_down(1, true);
            std::thread::sleep(std::time::Duration::from_millis(2));
            toggler_plan.set_node_down(1, false);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    });
    for _ in 0..10 {
        service.cluster().clear_buffer_pools();
        let r = service
            .get_threshold(&q)
            .expect("scan under a flapping replica");
        assert!(r.degraded.is_none(), "k=2 must absorb the flapping node");
        assert_eq!(point_bits(&r.points), reference);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    toggler.join().expect("toggler");
}

/// A slow-disk primary blows the per-node modelled-time deadline over
/// the compressed tier. Unreplicated, that deadline costs part of the
/// answer; at k=2 the mediator treats the timed-out node like a dead
/// one and fails the work over to its fast replica — the answer comes
/// back complete and byte-identical, inside the deadline.
#[test]
fn primary_timeout_fails_over_to_fast_replica() {
    // node 0's three field tables are exactly file ids 0/1024/2048
    // (file ids advance by 1024 per table, nodes built in order), so
    // these rules model one node with pathological disks
    let slow_node_0 = || {
        let mut plan = FaultPlan::new(FaultPlan::seed_from_env(0x7411));
        for file_id in [0, 1024, 2048] {
            plan = plan.with_rule(FaultRule {
                site: tdb_storage::FaultSite::BlockRead,
                kind: tdb_storage::FaultKind::Latency { seconds: 30.0 },
                probability: 1.0,
                file_id: Some(file_id),
                block_no: None,
            });
        }
        plan.shared()
    };
    let deadline = QueryLimits {
        node_deadline_s: Some(10.0),
        ..Default::default()
    };
    let q = curl_query().without_cache();

    // control: without replicas the deadline drops node 0's boxes
    let lone = build_codec_limits(
        "fi_timeout_k1",
        tdb_cluster::CompressionConfig::lossless(),
        Some(slow_node_0()),
        deadline,
    );
    let degraded = lone
        .get_threshold(&q)
        .expect("deadline must degrade, not fail")
        .degraded
        .expect("the slow node must miss the deadline");
    assert!(degraded.failed_nodes[0].reason.contains("deadline"));

    // replicated: the same pathology fails over and completes
    let replicated = build_replicated_codec(
        "fi_timeout_k2",
        tdb_cluster::CompressionConfig::lossless(),
        Some(slow_node_0()),
        deadline,
    );
    let (clean, _dir) = build_codec(
        "fi_timeout_ref",
        tdb_cluster::CompressionConfig::lossless(),
        None,
    );
    let r = replicated
        .get_threshold(&q)
        .expect("failover must beat the deadline");
    assert!(r.degraded.is_none(), "the fast replica must fill in");
    let reference = clean.get_threshold(&q).expect("reference");
    assert_eq!(point_bits(&r.points), point_bits(&reference.points));
}

/// Same shape as [`build_codec`] but with query limits.
fn build_codec_limits(
    tag: &str,
    codec: tdb_cluster::CompressionConfig,
    plan: Option<Arc<FaultPlan>>,
    limits: QueryLimits,
) -> TurbulenceService {
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            compression: codec,
            faults: plan,
            ..ClusterConfig::default()
        },
        limits,
        data_dir: tdb_bench::scratch_dir(tag),
    };
    TurbulenceService::build(config).expect("build")
}
