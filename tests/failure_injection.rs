//! Fault tolerance of the query path: corrupted partition blocks are
//! detected by the CRC and surfaced as query errors — never as silent
//! wrong answers or crashes.

use std::io::{Read, Seek, SeekFrom, Write};

use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, QueryError, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

fn build(tag: &str) -> (TurbulenceService, std::path::PathBuf) {
    let dir = tdb_bench::scratch_dir(tag);
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(32, 1, 0xdead),
        cluster: ClusterConfig {
            num_nodes: 2,
            procs_per_node: 2,
            arrays_per_node: 2,
            chunk_atoms: 2,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: dir.clone(),
    };
    (TurbulenceService::build(config).expect("build"), dir)
}

/// Flips one byte in the middle of a data block of every velocity
/// partition of node 0.
fn corrupt_velocity_partitions(dir: &std::path::Path) -> usize {
    let node_dir = dir.join("node0");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&node_dir).expect("node dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("velocity_part") {
            continue;
        }
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open partition");
        let len = f.metadata().unwrap().len();
        // flip a byte well inside the first data block (after the header,
        // before the footer)
        let pos = (len / 4).clamp(16, len - 64);
        f.seek(SeekFrom::Start(pos)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(pos)).unwrap();
        f.write_all(&[b[0] ^ 0xa5]).unwrap();
        f.sync_all().unwrap();
        corrupted += 1;
    }
    corrupted
}

#[test]
fn corrupted_block_fails_the_query_loudly() {
    let (service, dir) = build("fi_corrupt");
    // sanity: the query works before corruption
    let q =
        ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0).without_cache();
    let ok = service.get_threshold(&q).expect("pre-corruption query");
    assert!(!ok.points.is_empty());

    assert!(corrupt_velocity_partitions(&dir) > 0, "no partitions found");
    service.cluster().clear_buffer_pools(); // force re-reads from disk

    match service.get_threshold(&q) {
        Err(QueryError::Backend(msg)) => {
            assert!(
                msg.contains("corrupt") || msg.contains("crc"),
                "unexpected backend message: {msg}"
            );
        }
        Ok(_) => panic!("corrupted data must not produce an answer"),
        Err(other) => panic!("expected Backend error, got {other:?}"),
    }
}

#[test]
fn corruption_in_one_field_leaves_others_usable() {
    let (service, dir) = build("fi_isolated");
    corrupt_velocity_partitions(&dir);
    service.cluster().clear_buffer_pools();
    // magnetic-field queries never touch the corrupted velocity partitions
    let q = ThresholdQuery::whole_timestep("magnetic", DerivedField::Norm, 0, 2.0).without_cache();
    let r = service
        .get_threshold(&q)
        .expect("unrelated field must work");
    assert!(!r.points.is_empty());
}

#[test]
fn cached_results_survive_storage_corruption() {
    // the semantic cache holds *results*, so a warm entry keeps answering
    // even when the raw data underneath has rotted — and the paper's
    // recovery path (re-evaluating at a lower threshold) fails loudly.
    let (service, dir) = build("fi_cache");
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 25.0);
    let cold = service.get_threshold(&q).expect("warm the cache");
    corrupt_velocity_partitions(&dir);
    service.cluster().clear_buffer_pools();
    let warm = service
        .get_threshold(&q)
        .expect("cache hit needs no raw data");
    assert_eq!(warm.cache_hits, warm.nodes);
    assert_eq!(warm.points.len(), cold.points.len());
    // a lower threshold forces re-evaluation from (corrupt) raw data
    let lower = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 20.0);
    assert!(matches!(
        service.get_threshold(&lower),
        Err(QueryError::Backend(_))
    ));
}
