//! Quickstart: build a small synthetic MHD archive, run a threshold query
//! of the vorticity (curl of velocity), and watch the semantic cache kick
//! in on the second query.
//!
//! ```sh
//! cargo run --release -p tdb-bench --example quickstart
//! ```

use tdb_core::{DerivedField, ServiceConfig, ThresholdQuery, TurbulenceService};

fn main() {
    let dir = std::env::temp_dir().join("thresholdb_quickstart");
    println!("building a 64³ MHD archive with 4 time-steps under {dir:?} ...");
    let service = TurbulenceService::build(ServiceConfig::small_mhd(&dir)).expect("build service");

    // pick a threshold from the field statistics, like a scientist
    // consulting the PDF (paper Fig. 2) before querying
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .expect("stats");
    println!(
        "vorticity norm: rms = {:.2}, max = {:.2}",
        stats.rms, stats.max
    );
    let threshold = 4.0 * stats.rms;

    let query = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, threshold);

    println!("\n-- cold query (evaluated from raw data, data-parallel) --");
    let cold = service.get_threshold(&query).expect("query");
    println!(
        "{} locations above {threshold:.1}; modelled {}",
        cold.points.len(),
        cold.breakdown
    );

    println!("\n-- same query again (answered from the semantic cache) --");
    let warm = service.get_threshold(&query).expect("query");
    println!(
        "{} locations; {} of {} nodes hit their cache; modelled {}",
        warm.points.len(),
        warm.cache_hits,
        warm.nodes,
        warm.breakdown
    );
    let speedup = cold.breakdown.total_s() / warm.breakdown.total_s();
    println!("\ncache speedup: {speedup:.1}x (paper reports >10x)");

    // show the hottest locations
    let mut top = warm.points.clone();
    top.sort_by(|a, b| b.value.total_cmp(&a.value));
    println!("\nmost intense locations:");
    for p in top.iter().take(5) {
        let (x, y, z) = p.coords();
        println!("  |ω| = {:8.2} at ({x:3}, {y:3}, {z:3})", p.value);
    }
}
