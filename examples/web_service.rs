//! The paper's Fig. 1 stack end to end: client programs talking to a
//! front-end Web-server over the network, which mediates to the database
//! nodes. Here the server runs in this process on an ephemeral port and
//! three "client programs" query it concurrently, like the K clients of
//! the figure.
//!
//! ```sh
//! cargo run --release -p tdb-bench --example web_service
//! ```

use std::sync::Arc;

use tdb_core::{DerivedField, ServiceConfig, TurbulenceService};
use tdb_wire::server::{Server, ServerConfig};
use tdb_wire::Client;

fn main() {
    let dir = std::env::temp_dir().join("thresholdb_web_service");
    println!("building the archive ...");
    let service =
        Arc::new(TurbulenceService::build(ServiceConfig::small_mhd(&dir)).expect("build"));
    let server =
        Server::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.addr();
    println!("front-end Web-server listening on {addr}\n");

    // client 0 inspects the catalogue
    let mut c0 = Client::connect(addr).expect("connect");
    let info = c0.info().expect("info");
    println!(
        "client 0: dataset '{}' is {}x{}x{}, {} steps, fields: {}",
        info.dataset,
        info.dims.0,
        info.dims.1,
        info.dims.2,
        info.timesteps,
        info.fields
            .iter()
            .map(|(n, c)| format!("{n}({c})"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // clients 1..K run threshold queries concurrently, as in Fig. 1
    let handles: Vec<_> = (1..=3u32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let (_, _, rms, _, _) = c
                    .get_stats("velocity", DerivedField::CurlNorm, 0)
                    .expect("stats");
                let k = (2.5 + 0.5 * f64::from(i)) * rms;
                let a = c
                    .get_threshold("velocity", DerivedField::CurlNorm, 0, None, k)
                    .expect("threshold");
                (i, k, a.points.len(), a.cache_hits, a.nodes)
            })
        })
        .collect();
    for h in handles {
        let (i, k, n, hits, nodes) = h.join().expect("client thread");
        println!("client {i}: |ω| >= {k:6.1} → {n:5} points ({hits}/{nodes} cache hits)");
    }

    // one more pass: by now the cache is warm for at least one threshold
    let mut c = Client::connect(addr).expect("connect");
    let (_, _, rms, _, _) = c
        .get_stats("velocity", DerivedField::CurlNorm, 0)
        .expect("stats");
    let a = c
        .get_threshold("velocity", DerivedField::CurlNorm, 0, None, 3.5 * rms)
        .expect("threshold");
    println!(
        "\nre-issued 3.5σ query: {} points, {}/{} nodes answered from cache, modelled {}",
        a.points.len(),
        a.cache_hits,
        a.nodes,
        a.breakdown
    );
    server.stop();
    println!("server stopped cleanly");
}
