//! A structured exploration workload against the semantic cache —
//! "currently we observe fairly high cache-hit ratios as the workload is
//! very structured and queries tend to examine the same regions in space
//! and time" (paper §5.2). Also demonstrates the §5.3 comparison against
//! a user evaluating thresholds locally.
//!
//! ```sh
//! cargo run --release -p tdb-bench --example cache_workload
//! ```

use tdb_core::baseline::local_evaluation_estimate;
use tdb_core::{DerivedField, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_storage::DeviceProfile;

fn main() {
    let dir = std::env::temp_dir().join("thresholdb_cache_workload");
    let service = TurbulenceService::build(ServiceConfig::small_mhd(&dir)).expect("build");
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .expect("stats");

    // a scientist zooming in: whole step at a conservative threshold, then
    // repeatedly raising the threshold over the same step — every refined
    // query is served from the cache
    println!("structured exploration of time-step 0:");
    let mut total_cold = 0.0;
    let mut total_all = 0.0;
    for (i, sigma) in [3.0, 3.5, 4.0, 4.5, 5.0, 6.0].iter().enumerate() {
        let q = ThresholdQuery::whole_timestep(
            "velocity",
            DerivedField::CurlNorm,
            0,
            sigma * stats.rms,
        );
        let r = service.get_threshold(&q).expect("query");
        let t = r.breakdown.total_s();
        total_all += t;
        if i == 0 {
            total_cold = t;
        }
        println!(
            "  k = {:5.1} ({sigma}σ): {:>6} pts, {} hit/{} nodes, modelled {:7.3}s",
            sigma * stats.rms,
            r.points.len(),
            r.cache_hits,
            r.nodes,
            t
        );
    }
    let stats_cache = service.cluster().cache_stats();
    println!(
        "cache counters: {} hits / {} misses (ratio {:.0}%), {} inserts",
        stats_cache.hits,
        stats_cache.misses,
        stats_cache.hit_ratio().unwrap_or(0.0) * 100.0,
        stats_cache.inserts
    );
    println!(
        "whole session cost {:.3}s modelled; re-running it cold would cost ≈ {:.3}s",
        total_all,
        total_cold * 6.0
    );

    // --- the §5.3 local-evaluation comparison ----------------------------
    println!("\nintegrated vs local evaluation (paper §5.3):");
    service.cluster().clear_caches();
    service.cluster().clear_buffer_pools();
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 4.0 * stats.rms)
        .without_cache();
    let integrated = service.get_threshold(&q).expect("query");
    let full = service.full_box();
    let report = local_evaluation_estimate(
        service.cluster(),
        "velocity",
        DerivedField::CurlNorm,
        0,
        &full,
        32,
        &DeviceProfile::user_wan(),
    )
    .expect("baseline estimate");
    println!(
        "  integrated (server-side): {:9.2}s modelled, {} points returned",
        integrated.breakdown.total_s(),
        integrated.points.len()
    );
    println!(
        "  local evaluation: download {} MB of XML-wrapped gradient in {} subqueries",
        report.download_bytes / 1_000_000,
        report.num_subqueries
    );
    println!(
        "  local evaluation total: {:9.2}s modelled ({:.0}x slower)",
        report.total_s,
        report.total_s / integrated.breakdown.total_s()
    );
}
