//! Exploring the derived-field catalogue: PDFs, top-k queries, velocity-
//! gradient invariants (Q and R) and the electric current in the MHD
//! dataset — everything §3 of the paper lists as scientifically
//! interesting.
//!
//! ```sh
//! cargo run --release -p tdb-bench --example field_explorer
//! ```

use tdb_core::{DerivedField, ServiceConfig, ThresholdQuery, TurbulenceService};

fn main() {
    let dir = std::env::temp_dir().join("thresholdb_field_explorer");
    let service = TurbulenceService::build(ServiceConfig::small_mhd(&dir)).expect("build");

    // --- Fig. 2-style PDF of the vorticity norm -------------------------
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    let pdf = service.get_pdf(&q, 0.0, 10.0, 9).expect("pdf");
    println!("PDF of the vorticity norm (paper Fig. 2 binning):");
    for i in 0..=pdf.histogram.nbins() {
        let (lo, hi) = pdf.histogram.bin_range(i);
        let label = if hi.is_infinite() {
            format!("[{lo:>3.0},  ..)")
        } else {
            format!("[{lo:>3.0},{hi:>3.0})")
        };
        let count = pdf.histogram.count(i);
        let bar_len = if count > 0 {
            (count as f64).log10().max(0.5) * 6.0
        } else {
            0.0
        };
        println!("  {label} {count:>9}  {}", "#".repeat(bar_len as usize));
    }

    // --- top-k: the most intense events of several fields ----------------
    println!("\ntop-5 locations per derived field:");
    for (raw, derived, label) in [
        ("velocity", DerivedField::CurlNorm, "vorticity |∇×u|"),
        ("magnetic", DerivedField::CurlNorm, "electric current |∇×B|"),
        ("velocity", DerivedField::QCriterion, "Q-invariant"),
        ("velocity", DerivedField::RInvariant, "R-invariant"),
        ("velocity", DerivedField::StrainRateNorm, "strain rate |S|"),
    ] {
        let q = ThresholdQuery::whole_timestep(raw, derived, 0, 0.0);
        let top = service.get_topk(&q, 5).expect("topk");
        let values: Vec<String> = top
            .points
            .iter()
            .map(|p| format!("{:.1}", p.value))
            .collect();
        println!("  {label:<24} {}", values.join(", "));
    }

    // --- threshold queries across the whole catalogue --------------------
    println!("\nthreshold queries at the 0.1% selectivity level:");
    for (raw, derived) in [
        ("velocity", DerivedField::CurlNorm),
        ("velocity", DerivedField::QCriterion),
        ("velocity", DerivedField::GradientNorm),
        ("magnetic", DerivedField::CurlNorm),
        ("magnetic", DerivedField::Norm),
        ("pressure", DerivedField::Norm),
    ] {
        let thr = service
            .threshold_for_fraction(raw, derived, 0, 0.001)
            .expect("threshold");
        let q = ThresholdQuery::whole_timestep(raw, derived, 0, thr);
        let r = service.get_threshold(&q).expect("query");
        println!(
            "  {raw:<9}/{:<17} k = {thr:>9.2} → {:>5} points, modelled {:6.3}s",
            derived.name(),
            r.points.len(),
            r.breakdown.total_s()
        );
    }

    // the error path of §4: a threshold that is set too low
    let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 0.0);
    match service.get_threshold(&q) {
        Err(e) => println!("\nthreshold 0.0 correctly rejected: {e}"),
        Ok(_) => println!("\n(grid small enough that threshold 0.0 fits the limit)"),
    }
}
