//! The paper's science use case (§3, Fig. 3): find the most intense
//! vorticity events across time with threshold queries, cluster them with
//! friends-of-friends in 4-D, and track the strongest "worm" as it
//! develops — then record everything in a landmark database (§7).
//!
//! ```sh
//! cargo run --release -p tdb-bench --example intense_events
//! ```

use tdb_analysis::fof::fof_clusters_3d;
use tdb_analysis::{fof_clusters_4d, track_clusters, LandmarkDb, SpaceTimePoint};
use tdb_cluster::ClusterConfig;
use tdb_core::{DerivedField, ServiceConfig, ThresholdQuery, TurbulenceService};
use tdb_turbgen::SyntheticDataset;

fn main() {
    let timesteps = 8;
    let config = ServiceConfig {
        dataset: SyntheticDataset::isotropic(64, timesteps, 2025),
        cluster: ClusterConfig {
            chunk_atoms: 2,
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: std::env::temp_dir().join("thresholdb_intense_events"),
    };
    println!("building a 64³ isotropic archive with {timesteps} time-steps ...");
    let service = TurbulenceService::build(config).expect("build");
    let dims = {
        let (nx, ny, nz) = service.dataset().grid.dims();
        (nx as u32, ny as u32, nz as u32)
    };

    // threshold every time-step at 4.5x the RMS of step 0
    let stats = service
        .derived_stats("velocity", DerivedField::CurlNorm, 0)
        .expect("stats");
    let threshold = 4.5 * stats.rms;
    println!("thresholding all {timesteps} steps at |ω| >= {threshold:.1} (4.5σ)\n");

    let mut spacetime: Vec<SpaceTimePoint> = Vec::new();
    let mut landmarks = LandmarkDb::new();
    let mut per_step_clusters = Vec::new();
    for t in 0..timesteps {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, t, threshold);
        let r = service.get_threshold(&q).expect("query");
        println!(
            "  t = {t}: {:5} points above threshold (modelled {:.2}s)",
            r.points.len(),
            r.breakdown.total_s()
        );
        // per-step 3-D clusters feed the landmark database
        let clusters = fof_clusters_3d(&r.points, dims, 2);
        landmarks.record_clusters(
            service.dataset().name.as_str(),
            "vorticity",
            t,
            &clusters,
            &r.points,
        );
        spacetime.extend(
            r.points
                .iter()
                .map(|&point| SpaceTimePoint { timestep: t, point }),
        );
        per_step_clusters.push(clusters);
    }

    // follow individual events through time (paper §3: "examine their
    // evolution with the flow")
    let tracks = track_clusters(&per_step_clusters, dims, 4);
    println!(
        "\ncluster tracking: {} tracks across {timesteps} steps",
        tracks.len()
    );
    for (i, tr) in tracks.iter().take(3).enumerate() {
        println!(
            "  track {i}: peak |ω| = {:.1} at step {}, lifetime {} steps",
            tr.peak_value,
            tr.peak_step,
            tr.lifetime()
        );
    }

    // 4-D friends-of-friends across the whole archive (paper Fig. 3)
    let clusters = fof_clusters_4d(&spacetime, dims, 2, 1);
    println!(
        "\n4-D friends-of-friends: {} space-time clusters",
        clusters.len()
    );
    let strongest = &clusters[0];
    println!(
        "most intense event: |ω| = {:.1} at {:?}, t = {}",
        strongest.peak_value, strongest.peak_location, strongest.peak_timestep
    );
    println!(
        "its cluster spans {} time-steps with {} member points",
        strongest.timespan, strongest.size
    );
    let per_step: Vec<usize> = (0..timesteps)
        .map(|t| {
            strongest
                .members
                .iter()
                .filter(|&&m| spacetime[m].timestep == t)
                .count()
        })
        .collect();
    println!("members per step (development of the worm): {per_step:?}");

    println!(
        "\nlandmark database now holds {} regions; top 3:",
        landmarks.len()
    );
    for lm in landmarks.top(service.dataset().name.as_str(), "vorticity", 3) {
        println!(
            "  t = {} peak {:8.2} at {:?}, {} pts, bbox {:?}..{:?}",
            lm.timestep, lm.peak_value, lm.peak_location, lm.num_points, lm.region.lo, lm.region.hi
        );
    }
}
